//! The pluggable kernel backend.
//!
//! Every GEMM and convolution-lowering call in the workspace flows through
//! a [`Backend`] trait object, so execution strategy is chosen once and
//! inherited everywhere (layers, trainers, federated loops):
//!
//! * [`Scalar`] — the portable reference kernels (`matmul.rs`,
//!   `im2col.rs`): simple loops, the ground truth the parallel backend is
//!   property-tested against.
//! * [`Parallel`] — cache-blocked, register-tiled kernels (AVX2+FMA when
//!   the CPU has them, detected at runtime) that split output rows across
//!   scoped threads for large problems. Thread count is configurable so
//!   outer client-level parallelism can budget inner kernel threads (see
//!   [`crate::parallel::thread_split`]).
//!
//! A process-wide default backend ([`default_backend`] /
//! [`set_default_backend`]) seeds newly built layers; individual models
//! can be re-pointed with `set_backend` in `fp-nn`.

use crate::im2col::{col2im_channel_range, im2col_row_range, Conv2dGeometry};
use crate::matmul::{matmul_into, matmul_nt_into, matmul_tn_into};
use std::sync::{Arc, OnceLock, RwLock};

/// A shared, thread-safe backend handle.
pub type BackendHandle = Arc<dyn Backend>;

/// The kernel set a compute backend must provide.
///
/// All matrix kernels **accumulate** into `out` (callers zero it for a
/// plain product), matching the reference kernels in `matmul.rs`.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (used in logs and bench reports).
    fn name(&self) -> &'static str;

    /// `out[m×n] += a[m×k] · b[k×n]`.
    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out[k×n] += aᵀ · b` with `a: [m×k]`, `b: [m×n]` (weight grads).
    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out[m×k] += a · bᵀ` with `a: [m×n]`, `b: [k×n]` (input grads).
    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize);

    /// Lowers one `[c_in, h, w]` image into the im2col matrix.
    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]);

    /// Adjoint of [`Backend::im2col`]: scatter-adds a cols-shaped gradient
    /// back into an image-shaped buffer.
    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]);
}

// ------------------------------------------------------------------ Scalar

/// The single-threaded reference backend (the seed repository's original
/// i-k-j kernels).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalar;

impl Backend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_into(a, b, out, m, k, n);
    }

    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_tn_into(a, b, out, m, k, n);
    }

    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
        matmul_nt_into(a, b, out, m, n, k);
    }

    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]) {
        crate::im2col::im2col(img, geo, cols);
    }

    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]) {
        crate::im2col::col2im(cols, geo, img_grad);
    }
}

// ---------------------------------------------------------------- Parallel

/// Minimum multiply-accumulate count before a kernel will spawn threads;
/// below this, scoped-thread setup costs more than it buys.
const PAR_MACS_THRESHOLD: usize = 4 << 20;

/// Minimum im2col/col2im buffer size before lowering is threaded.
const PAR_COLS_THRESHOLD: usize = 1 << 17;

/// The optimized backend: register-tiled SIMD kernels plus row-parallel
/// execution across scoped threads.
///
/// Results are bit-identical for any thread count (rows are partitioned,
/// never split), so changing the parallelism never changes numerics.
#[derive(Debug, Clone, Copy)]
pub struct Parallel {
    threads: usize,
}

impl Parallel {
    /// A backend using the full hardware thread budget.
    pub fn new() -> Self {
        Parallel {
            threads: crate::parallel::max_threads(),
        }
    }

    /// A backend capped at `threads` kernel threads (`0` means the full
    /// hardware budget; `1` keeps the fast kernels but never spawns).
    pub fn with_threads(threads: usize) -> Self {
        Parallel {
            threads: if threads == 0 {
                crate::parallel::max_threads()
            } else {
                threads
            },
        }
    }

    /// The configured kernel-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads to actually use for a problem with `rows` independent
    /// output rows and `macs` multiply-accumulates.
    fn plan(&self, rows: usize, macs: usize) -> usize {
        if self.threads <= 1 || macs < PAR_MACS_THRESHOLD {
            1
        } else {
            self.threads.min(rows.max(1))
        }
    }
}

impl Default for Parallel {
    fn default() -> Self {
        Parallel::new()
    }
}

/// Splits `out` into per-thread contiguous row chunks and runs `body` on
/// each chunk in a scoped thread. `body(r0, r1, chunk)` sees rows
/// `[r0, r1)`.
///
/// Chunk boundaries are aligned to multiples of 4 rows so they coincide
/// with the kernels' register-tile boundaries — that makes results
/// bit-identical for every thread count (each row's arithmetic is
/// independent of which chunk it lands in).
fn for_row_chunks<F>(out: &mut [f32], rows: usize, row_len: usize, threads: usize, body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    if threads <= 1 || rows == 0 {
        body(0, rows, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads).next_multiple_of(4);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + chunk_rows).min(rows);
            let (chunk, tail) = rest.split_at_mut((r1 - r0) * row_len);
            rest = tail;
            let body = &body;
            s.spawn(move || body(r0, r1, chunk));
            r0 = r1;
        }
    });
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs buffer size");
        assert_eq!(b.len(), k * n, "rhs buffer size");
        assert_eq!(out.len(), m * n, "out buffer size");
        let threads = self.plan(m, m * k * n);
        for_row_chunks(out, m, n, threads, |r0, r1, chunk| {
            kernels::gemm_nn(&a[r0 * k..r1 * k], b, chunk, r1 - r0, k, n);
        });
    }

    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs buffer size");
        assert_eq!(b.len(), m * n, "rhs buffer size");
        assert_eq!(out.len(), k * n, "out buffer size");
        let threads = self.plan(k, m * k * n);
        for_row_chunks(out, k, n, threads, |p0, p1, chunk| {
            kernels::gemm_tn(a, b, chunk, m, k, n, p0, p1);
        });
    }

    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
        assert_eq!(a.len(), m * n, "lhs buffer size");
        assert_eq!(b.len(), k * n, "rhs buffer size");
        assert_eq!(out.len(), m * k, "out buffer size");
        let threads = self.plan(m, m * k * n);
        for_row_chunks(out, m, k, threads, |r0, r1, chunk| {
            kernels::gemm_nt(&a[r0 * n..r1 * n], b, chunk, r1 - r0, n, k);
        });
    }

    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]) {
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        assert_eq!(img.len(), geo.c_in * geo.h * geo.w, "image buffer size");
        assert_eq!(cols.len(), rows * n_cols, "cols buffer size");
        let threads = if self.threads > 1 && cols.len() >= PAR_COLS_THRESHOLD {
            self.threads.min(rows.max(1))
        } else {
            1
        };
        for_row_chunks(cols, rows, n_cols, threads, |r0, r1, chunk| {
            im2col_row_range(img, geo, chunk, r0, r1);
        });
    }

    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]) {
        let plane = geo.h * geo.w;
        assert_eq!(img_grad.len(), geo.c_in * plane, "image buffer size");
        assert_eq!(
            cols.len(),
            geo.col_rows() * geo.col_cols(),
            "cols buffer size"
        );
        let threads = if self.threads > 1 && cols.len() >= PAR_COLS_THRESHOLD {
            self.threads.min(geo.c_in.max(1))
        } else {
            1
        };
        for_row_chunks(img_grad, geo.c_in, plane, threads, |c0, c1, chunk| {
            col2im_channel_range(cols, geo, chunk, c0, c1);
        });
    }
}

// ---------------------------------------------------------------- kernels

/// The single-threaded compute kernels behind [`Parallel`].
///
/// On x86-64 with AVX2+FMA (detected once at runtime) these use
/// register-tiled intrinsics; elsewhere they fall back to cache-blocked
/// portable loops that still beat the naive reference through better
/// register reuse.
mod kernels {
    /// k-dimension block so the streamed panel of `b` stays cache-resident.
    const KC: usize = 256;

    #[cfg(target_arch = "x86_64")]
    fn use_fma() -> bool {
        static FMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *FMA.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// `out[m×n] += a[m×k]·b[k×n]`.
    pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        #[cfg(target_arch = "x86_64")]
        if use_fma() {
            // SAFETY: AVX2+FMA presence was verified by `use_fma`.
            unsafe { x86::gemm_nn_fma(a, b, out, m, k, n) };
            return;
        }
        portable::gemm_nn(a, b, out, m, k, n);
    }

    /// `out[p0..p1 rows of k×n] += (aᵀ·b)[p0..p1]` with `a: [m×k]`,
    /// `b: [m×n]`; `out` holds only the `p1-p0` chunk rows.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_tn(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        p0: usize,
        p1: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if use_fma() {
            // SAFETY: AVX2+FMA presence was verified by `use_fma`.
            unsafe { x86::gemm_tn_fma(a, b, out, m, k, n, p0, p1) };
            return;
        }
        portable::gemm_tn(a, b, out, m, k, n, p0, p1);
    }

    /// `out[m×k] += a[m×n]·bᵀ[k×n]` (row-chunked `a`/`out`).
    pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
        #[cfg(target_arch = "x86_64")]
        if use_fma() {
            // SAFETY: AVX2+FMA presence was verified by `use_fma`.
            unsafe { x86::gemm_nt_fma(a, b, out, m, n, k) };
            return;
        }
        portable::gemm_nt(a, b, out, m, n, k);
    }

    /// Cache-blocked portable fallbacks (also the non-x86 path).
    mod portable {
        use super::KC;

        pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
            let mut pc = 0;
            while pc < k {
                let kb = KC.min(k - pc);
                let mut rows = out.chunks_mut(n);
                let mut i = 0;
                // 4-row register tile: each loaded `b` row feeds 4 FMAs.
                while i + 4 <= m {
                    let o0 = rows.next().expect("row count");
                    let o1 = rows.next().expect("row count");
                    let o2 = rows.next().expect("row count");
                    let o3 = rows.next().expect("row count");
                    for p in 0..kb {
                        let x0 = a[i * k + pc + p];
                        let x1 = a[(i + 1) * k + pc + p];
                        let x2 = a[(i + 2) * k + pc + p];
                        let x3 = a[(i + 3) * k + pc + p];
                        let b_row = &b[(pc + p) * n..(pc + p) * n + n];
                        for (j, &bv) in b_row.iter().enumerate() {
                            o0[j] += x0 * bv;
                            o1[j] += x1 * bv;
                            o2[j] += x2 * bv;
                            o3[j] += x3 * bv;
                        }
                    }
                    i += 4;
                }
                for o_row in rows {
                    let a_row = &a[i * k + pc..i * k + pc + kb];
                    for (p, &x) in a_row.iter().enumerate() {
                        let b_row = &b[(pc + p) * n..(pc + p) * n + n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += x * bv;
                        }
                    }
                    i += 1;
                }
                pc += kb;
            }
        }

        #[allow(clippy::too_many_arguments)]
        pub fn gemm_tn(
            a: &[f32],
            b: &[f32],
            out: &mut [f32],
            m: usize,
            k: usize,
            n: usize,
            p0: usize,
            p1: usize,
        ) {
            for i in 0..m {
                let b_row = &b[i * n..(i + 1) * n];
                for (chunk_row, p) in (p0..p1).enumerate() {
                    let x = a[i * k + p];
                    if x == 0.0 {
                        continue;
                    }
                    let o_row = &mut out[chunk_row * n..(chunk_row + 1) * n];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += x * bv;
                    }
                }
            }
        }

        pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
            for i in 0..m {
                let a_row = &a[i * n..(i + 1) * n];
                let o_row = &mut out[i * k..(i + 1) * k];
                for (p, o) in o_row.iter_mut().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o += acc;
                }
            }
        }
    }

    /// AVX2+FMA register-tiled kernels.
    ///
    /// All of these are `unsafe` only because of the `target_feature`
    /// attribute; every pointer access stays inside the slices whose
    /// lengths the public [`super::super::Backend`] methods validated.
    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::KC;
        use std::arch::x86_64::*;

        #[inline]
        unsafe fn hsum(v: __m256) -> f32 {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps(v, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_hadd_ps(s, s);
            let s = _mm_hadd_ps(s, s);
            _mm_cvtss_f32(s)
        }

        /// 4×16 register tile over the output, k-blocked.
        #[target_feature(enable = "avx2,fma")]
        pub unsafe fn gemm_nn_fma(
            a: &[f32],
            b: &[f32],
            out: &mut [f32],
            m: usize,
            k: usize,
            n: usize,
        ) {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut pc = 0;
            while pc < k {
                let kb = KC.min(k - pc);
                let mut i = 0;
                while i + 4 <= m {
                    let a0 = ap.add(i * k + pc);
                    let a1 = ap.add((i + 1) * k + pc);
                    let a2 = ap.add((i + 2) * k + pc);
                    let a3 = ap.add((i + 3) * k + pc);
                    let mut j = 0;
                    while j + 16 <= n {
                        let o0 = op.add(i * n + j);
                        let o1 = op.add((i + 1) * n + j);
                        let o2 = op.add((i + 2) * n + j);
                        let o3 = op.add((i + 3) * n + j);
                        let mut c00 = _mm256_loadu_ps(o0);
                        let mut c01 = _mm256_loadu_ps(o0.add(8));
                        let mut c10 = _mm256_loadu_ps(o1);
                        let mut c11 = _mm256_loadu_ps(o1.add(8));
                        let mut c20 = _mm256_loadu_ps(o2);
                        let mut c21 = _mm256_loadu_ps(o2.add(8));
                        let mut c30 = _mm256_loadu_ps(o3);
                        let mut c31 = _mm256_loadu_ps(o3.add(8));
                        for p in 0..kb {
                            let brow = bp.add((pc + p) * n + j);
                            let b0 = _mm256_loadu_ps(brow);
                            let b1 = _mm256_loadu_ps(brow.add(8));
                            let x0 = _mm256_set1_ps(*a0.add(p));
                            let x1 = _mm256_set1_ps(*a1.add(p));
                            let x2 = _mm256_set1_ps(*a2.add(p));
                            let x3 = _mm256_set1_ps(*a3.add(p));
                            c00 = _mm256_fmadd_ps(x0, b0, c00);
                            c01 = _mm256_fmadd_ps(x0, b1, c01);
                            c10 = _mm256_fmadd_ps(x1, b0, c10);
                            c11 = _mm256_fmadd_ps(x1, b1, c11);
                            c20 = _mm256_fmadd_ps(x2, b0, c20);
                            c21 = _mm256_fmadd_ps(x2, b1, c21);
                            c30 = _mm256_fmadd_ps(x3, b0, c30);
                            c31 = _mm256_fmadd_ps(x3, b1, c31);
                        }
                        _mm256_storeu_ps(o0, c00);
                        _mm256_storeu_ps(o0.add(8), c01);
                        _mm256_storeu_ps(o1, c10);
                        _mm256_storeu_ps(o1.add(8), c11);
                        _mm256_storeu_ps(o2, c20);
                        _mm256_storeu_ps(o2.add(8), c21);
                        _mm256_storeu_ps(o3, c30);
                        _mm256_storeu_ps(o3.add(8), c31);
                        j += 16;
                    }
                    while j < n {
                        for r in 0..4 {
                            let mut acc = 0.0f32;
                            for p in 0..kb {
                                acc += *ap.add((i + r) * k + pc + p) * *bp.add((pc + p) * n + j);
                            }
                            *op.add((i + r) * n + j) += acc;
                        }
                        j += 1;
                    }
                    i += 4;
                }
                while i < m {
                    for j in 0..n {
                        let mut acc = 0.0f32;
                        for p in 0..kb {
                            acc += *ap.add(i * k + pc + p) * *bp.add((pc + p) * n + j);
                        }
                        *op.add(i * n + j) += acc;
                    }
                    i += 1;
                }
                pc += kb;
            }
        }

        /// 4 output rows (`p`) × 16 columns per tile; the reduction runs
        /// over `m` with strided scalar loads from `a`.
        #[target_feature(enable = "avx2,fma")]
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn gemm_tn_fma(
            a: &[f32],
            b: &[f32],
            out: &mut [f32],
            m: usize,
            k: usize,
            n: usize,
            p0: usize,
            p1: usize,
        ) {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut p = p0;
            while p + 4 <= p1 {
                let orow = (p - p0) * n;
                let mut j = 0;
                while j + 16 <= n {
                    let o0 = op.add(orow + j);
                    let o1 = op.add(orow + n + j);
                    let o2 = op.add(orow + 2 * n + j);
                    let o3 = op.add(orow + 3 * n + j);
                    let mut c00 = _mm256_loadu_ps(o0);
                    let mut c01 = _mm256_loadu_ps(o0.add(8));
                    let mut c10 = _mm256_loadu_ps(o1);
                    let mut c11 = _mm256_loadu_ps(o1.add(8));
                    let mut c20 = _mm256_loadu_ps(o2);
                    let mut c21 = _mm256_loadu_ps(o2.add(8));
                    let mut c30 = _mm256_loadu_ps(o3);
                    let mut c31 = _mm256_loadu_ps(o3.add(8));
                    for i in 0..m {
                        let brow = bp.add(i * n + j);
                        let b0 = _mm256_loadu_ps(brow);
                        let b1 = _mm256_loadu_ps(brow.add(8));
                        let arow = ap.add(i * k + p);
                        let x0 = _mm256_set1_ps(*arow);
                        let x1 = _mm256_set1_ps(*arow.add(1));
                        let x2 = _mm256_set1_ps(*arow.add(2));
                        let x3 = _mm256_set1_ps(*arow.add(3));
                        c00 = _mm256_fmadd_ps(x0, b0, c00);
                        c01 = _mm256_fmadd_ps(x0, b1, c01);
                        c10 = _mm256_fmadd_ps(x1, b0, c10);
                        c11 = _mm256_fmadd_ps(x1, b1, c11);
                        c20 = _mm256_fmadd_ps(x2, b0, c20);
                        c21 = _mm256_fmadd_ps(x2, b1, c21);
                        c30 = _mm256_fmadd_ps(x3, b0, c30);
                        c31 = _mm256_fmadd_ps(x3, b1, c31);
                    }
                    _mm256_storeu_ps(o0, c00);
                    _mm256_storeu_ps(o0.add(8), c01);
                    _mm256_storeu_ps(o1, c10);
                    _mm256_storeu_ps(o1.add(8), c11);
                    _mm256_storeu_ps(o2, c20);
                    _mm256_storeu_ps(o2.add(8), c21);
                    _mm256_storeu_ps(o3, c30);
                    _mm256_storeu_ps(o3.add(8), c31);
                    j += 16;
                }
                while j < n {
                    for r in 0..4 {
                        let mut acc = 0.0f32;
                        for i in 0..m {
                            acc += *ap.add(i * k + p + r) * *bp.add(i * n + j);
                        }
                        *op.add(orow + r * n + j) += acc;
                    }
                    j += 1;
                }
                p += 4;
            }
            while p < p1 {
                let orow = (p - p0) * n;
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for i in 0..m {
                        acc += *ap.add(i * k + p) * *bp.add(i * n + j);
                    }
                    *op.add(orow + j) += acc;
                }
                p += 1;
            }
        }

        /// Dot-product kernel: 2 `a` rows × 4 `b` rows of 8-wide FMA
        /// accumulators, horizontally summed at the end.
        #[target_feature(enable = "avx2,fma")]
        pub unsafe fn gemm_nt_fma(
            a: &[f32],
            b: &[f32],
            out: &mut [f32],
            m: usize,
            n: usize,
            k: usize,
        ) {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let n8 = n - n % 8;
            let mut i = 0;
            while i + 2 <= m {
                let mut p = 0;
                while p + 4 <= k {
                    let mut acc = [_mm256_setzero_ps(); 8];
                    let a0 = ap.add(i * n);
                    let a1 = ap.add((i + 1) * n);
                    let mut j = 0;
                    while j < n8 {
                        let va0 = _mm256_loadu_ps(a0.add(j));
                        let va1 = _mm256_loadu_ps(a1.add(j));
                        for r in 0..4 {
                            let vb = _mm256_loadu_ps(bp.add((p + r) * n + j));
                            acc[r] = _mm256_fmadd_ps(va0, vb, acc[r]);
                            acc[4 + r] = _mm256_fmadd_ps(va1, vb, acc[4 + r]);
                        }
                        j += 8;
                    }
                    for r in 0..4 {
                        let mut s0 = hsum(acc[r]);
                        let mut s1 = hsum(acc[4 + r]);
                        for j in n8..n {
                            let bv = *bp.add((p + r) * n + j);
                            s0 += *a0.add(j) * bv;
                            s1 += *a1.add(j) * bv;
                        }
                        *op.add(i * k + p + r) += s0;
                        *op.add((i + 1) * k + p + r) += s1;
                    }
                    p += 4;
                }
                while p < k {
                    for r in 0..2 {
                        let arow = ap.add((i + r) * n);
                        let brow = bp.add(p * n);
                        let mut acc = _mm256_setzero_ps();
                        let mut j = 0;
                        while j < n8 {
                            acc = _mm256_fmadd_ps(
                                _mm256_loadu_ps(arow.add(j)),
                                _mm256_loadu_ps(brow.add(j)),
                                acc,
                            );
                            j += 8;
                        }
                        let mut s = hsum(acc);
                        for j in n8..n {
                            s += *arow.add(j) * *brow.add(j);
                        }
                        *op.add((i + r) * k + p) += s;
                    }
                    p += 1;
                }
                i += 2;
            }
            while i < m {
                let arow = ap.add(i * n);
                for p in 0..k {
                    let brow = bp.add(p * n);
                    let mut acc = _mm256_setzero_ps();
                    let mut j = 0;
                    while j < n8 {
                        acc = _mm256_fmadd_ps(
                            _mm256_loadu_ps(arow.add(j)),
                            _mm256_loadu_ps(brow.add(j)),
                            acc,
                        );
                        j += 8;
                    }
                    let mut s = hsum(acc);
                    for j in n8..n {
                        s += *arow.add(j) * *brow.add(j);
                    }
                    *op.add(i * k + p) += s;
                }
                i += 1;
            }
        }
    }
}

// ----------------------------------------------------------- default pick

fn default_cell() -> &'static RwLock<BackendHandle> {
    static CELL: OnceLock<RwLock<BackendHandle>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Arc::new(Parallel::new())))
}

/// The process-wide default backend (initially [`Parallel`] with the full
/// hardware thread budget). Newly constructed layers pick this up.
pub fn default_backend() -> BackendHandle {
    default_cell().read().expect("backend lock").clone()
}

/// Replaces the process-wide default backend.
pub fn set_default_backend(backend: BackendHandle) {
    *default_cell().write().expect("backend lock") = backend;
}

/// A backend handle budgeted to `threads` kernel threads: `0` returns the
/// process default, otherwise a [`Parallel`] capped at `threads`.
///
/// This is what client-level parallel loops hand to each worker so that
/// outer × inner parallelism never oversubscribes the machine.
pub fn backend_for_threads(threads: usize) -> BackendHandle {
    if threads == 0 {
        default_backend()
    } else {
        Arc::new(Parallel::with_threads(threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_support::arb;

    fn assert_close(got: &[f32], want: &[f32], tag: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-4 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "{tag}[{i}]: {g} vs {w}");
        }
    }

    /// Shapes chosen to hit every tile tail: sub-tile, exact-tile, ragged.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (4, 16, 16),
        (5, 17, 33),
        (8, 300, 24),
        (33, 7, 130),
        (64, 64, 64),
    ];

    #[test]
    fn parallel_matmul_matches_scalar() {
        for &threads in &[1, 3] {
            let backend = Parallel::with_threads(threads);
            for &(m, k, n) in SHAPES {
                let a = arb(m * k, 1);
                let b = arb(k * n, 2);
                let mut want = arb(m * n, 3);
                let mut got = want.clone();
                Scalar.matmul_into(&a, &b, &mut want, m, k, n);
                backend.matmul_into(&a, &b, &mut got, m, k, n);
                assert_close(&got, &want, &format!("nn {m}x{k}x{n} t{threads}"));
            }
        }
    }

    #[test]
    fn parallel_tn_matches_scalar() {
        for &(m, k, n) in SHAPES {
            let a = arb(m * k, 4);
            let b = arb(m * n, 5);
            let mut want = arb(k * n, 6);
            let mut got = want.clone();
            Scalar.matmul_tn_into(&a, &b, &mut want, m, k, n);
            Parallel::with_threads(2).matmul_tn_into(&a, &b, &mut got, m, k, n);
            assert_close(&got, &want, &format!("tn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_nt_matches_scalar() {
        for &(m, n, k) in SHAPES {
            let a = arb(m * n, 7);
            let b = arb(k * n, 8);
            let mut want = arb(m * k, 9);
            let mut got = want.clone();
            Scalar.matmul_nt_into(&a, &b, &mut want, m, n, k);
            Parallel::with_threads(2).matmul_nt_into(&a, &b, &mut got, m, n, k);
            assert_close(&got, &want, &format!("nt {m}x{n}x{k}"));
        }
    }

    #[test]
    fn parallel_im2col_matches_scalar() {
        let geo = Conv2dGeometry {
            c_in: 3,
            h: 9,
            w: 7,
            k: 3,
            stride: 2,
            pad: 1,
        };
        let img = arb(geo.c_in * geo.h * geo.w, 10);
        let mut want = vec![0.0; geo.col_rows() * geo.col_cols()];
        let mut got = want.clone();
        Scalar.im2col(&img, &geo, &mut want);
        Parallel::with_threads(2).im2col(&img, &geo, &mut got);
        assert_eq!(want, got);

        let cols = arb(want.len(), 11);
        let mut gw = vec![0.0; img.len()];
        let mut gg = gw.clone();
        Scalar.col2im(&cols, &geo, &mut gw);
        Parallel::with_threads(2).col2im(&cols, &geo, &mut gg);
        assert_close(&gg, &gw, "col2im");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Force the threaded path with a problem above the MACs threshold.
        let (m, k, n) = (64, 128, 640);
        let a = arb(m * k, 12);
        let b = arb(k * n, 13);
        let mut one = vec![0.0; m * n];
        Parallel::with_threads(1).matmul_into(&a, &b, &mut one, m, k, n);
        for threads in [2, 3, 5] {
            let mut many = vec![0.0; m * n];
            Parallel::with_threads(threads).matmul_into(&a, &b, &mut many, m, k, n);
            assert_eq!(one, many, "threads={threads} must be bit-identical");
        }
    }

    /// The transposed kernels must also survive real row chunking: these
    /// shapes sit above `PAR_MACS_THRESHOLD`, so with threads > 1 the
    /// chunk offsets (`p0 > 0` in tn, row offsets in nt) are exercised,
    /// including ragged last chunks (64 rows over 3 threads).
    #[test]
    fn threaded_tn_and_nt_match_scalar_and_single_thread() {
        // tn: out has k = 64 rows; macs = 640·64·128 ≈ 5.2M.
        let (m, k, n) = (640, 64, 128);
        let a = arb(m * k, 14);
        let b = arb(m * n, 15);
        let mut want = vec![0.0; k * n];
        Scalar.matmul_tn_into(&a, &b, &mut want, m, k, n);
        let mut one = vec![0.0; k * n];
        Parallel::with_threads(1).matmul_tn_into(&a, &b, &mut one, m, k, n);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; k * n];
            Parallel::with_threads(threads).matmul_tn_into(&a, &b, &mut got, m, k, n);
            assert_eq!(one, got, "tn threads={threads} must be bit-identical");
            assert_close(&got, &want, &format!("tn threaded t{threads}"));
        }

        // nt: out has m = 64 rows; macs identical.
        let (m, n, k) = (64, 640, 128);
        let a = arb(m * n, 16);
        let b = arb(k * n, 17);
        let mut want = vec![0.0; m * k];
        Scalar.matmul_nt_into(&a, &b, &mut want, m, n, k);
        let mut one = vec![0.0; m * k];
        Parallel::with_threads(1).matmul_nt_into(&a, &b, &mut one, m, n, k);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; m * k];
            Parallel::with_threads(threads).matmul_nt_into(&a, &b, &mut got, m, n, k);
            assert_eq!(one, got, "nt threads={threads} must be bit-identical");
            assert_close(&got, &want, &format!("nt threaded t{threads}"));
        }
    }

    /// im2col/col2im chunk decomposition (`row0 > 0`, `c0 > 0`) must hold
    /// on a geometry large enough to cross `PAR_COLS_THRESHOLD`.
    #[test]
    fn threaded_im2col_col2im_match_scalar() {
        let geo = Conv2dGeometry {
            c_in: 16,
            h: 34,
            w: 34,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert!(
            geo.col_rows() * geo.col_cols() >= super::PAR_COLS_THRESHOLD,
            "geometry must cross the parallel threshold"
        );
        let img = arb(geo.c_in * geo.h * geo.w, 18);
        let mut want = vec![0.0; geo.col_rows() * geo.col_cols()];
        Scalar.im2col(&img, &geo, &mut want);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; want.len()];
            Parallel::with_threads(threads).im2col(&img, &geo, &mut got);
            assert_eq!(want, got, "im2col threads={threads}");
        }

        let cols = arb(want.len(), 19);
        let mut gw = vec![0.0; img.len()];
        Scalar.col2im(&cols, &geo, &mut gw);
        for threads in [2, 3, 5] {
            let mut gg = vec![0.0; img.len()];
            Parallel::with_threads(threads).col2im(&cols, &geo, &mut gg);
            assert_eq!(gw, gg, "col2im threads={threads}");
        }
    }

    /// NOTE: this test swaps the process-wide default backend while the
    /// rest of the binary runs concurrently; every other test that touches
    /// `default_backend()` (e.g. `Tensor::matmul` unit tests) must stay
    /// correct under either backend (they use exact-integer cases).
    #[test]
    fn default_backend_is_settable() {
        let initial = default_backend();
        assert_eq!(initial.name(), "parallel");
        set_default_backend(Arc::new(Scalar));
        assert_eq!(default_backend().name(), "scalar");
        set_default_backend(initial);
        assert_eq!(backend_for_threads(0).name(), "parallel");
        assert_eq!(backend_for_threads(2).name(), "parallel");
    }
}
