//! The pluggable kernel backend.
//!
//! Every GEMM and convolution-lowering call in the workspace flows through
//! a [`Backend`] trait object, so execution strategy is chosen once and
//! inherited everywhere (layers, trainers, federated loops):
//!
//! * [`Scalar`] — the portable reference kernels (`matmul.rs`,
//!   `im2col.rs`): simple loops, the ground truth the parallel backend is
//!   property-tested against.
//! * [`Parallel`] — the panel-packed, cache-blocked engine in
//!   `pack.rs`: AVX-512 / AVX2+FMA register-tiled microkernels over
//!   packed panels (detected at runtime, portable `mul_add` fallback),
//!   fused im2col convolution entry points, and grouped GEMM, splitting
//!   output rows across scoped threads for large problems. Thread count
//!   is configurable so outer client-level parallelism can budget inner
//!   kernel threads (see [`crate::parallel::thread_split`]).
//!
//! A process-wide default backend ([`default_backend`] /
//! [`set_default_backend`]) seeds newly built layers; individual models
//! can be re-pointed with `set_backend` in `fp-nn`.

use crate::im2col::{col2im_channel_range, im2col_row_range, Conv2dGeometry};
use crate::matmul::{matmul_into, matmul_nt_into, matmul_tn_into};
use std::sync::{Arc, OnceLock, RwLock};

/// A shared, thread-safe backend handle.
pub type BackendHandle = Arc<dyn Backend>;

/// The kernel set a compute backend must provide.
///
/// All matrix kernels **accumulate** into `out` (callers zero it for a
/// plain product), matching the reference kernels in `matmul.rs`.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (used in logs and bench reports).
    fn name(&self) -> &'static str;

    /// `out[m×n] += a[m×k] · b[k×n]`.
    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out[k×n] += aᵀ · b` with `a: [m×k]`, `b: [m×n]` (weight grads).
    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out[m×k] += a · bᵀ` with `a: [m×n]`, `b: [k×n]` (input grads).
    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize);

    /// Lowers one `[c_in, h, w]` image into the im2col matrix.
    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]);

    /// Adjoint of [`Backend::im2col`]: scatter-adds a cols-shaped gradient
    /// back into an image-shaped buffer.
    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]);

    /// Batched conv forward: `out[s] += W·im2col(x[s])` for every sample,
    /// plus `bias` per output channel when given. `out` must be
    /// zero-initialized by the caller for a plain convolution.
    ///
    /// `ws` is a caller-held scratch buffer reused across calls (a conv
    /// layer passes its per-layer workspace): the reference path
    /// materializes the im2col columns in it; the [`Parallel`] override
    /// stores packed weight panels there instead and streams the patch
    /// columns straight into packed B panels — no `cols` buffer at all.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_forward(
        &self,
        x: &[f32],
        w: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, img_len) = check_conv2d_args(x, w, bias, out, batch, c_out, geo);
        ws.resize(rows * n_cols, 0.0);
        for s in 0..batch {
            self.im2col(
                &x[s * img_len..(s + 1) * img_len],
                geo,
                &mut ws[..rows * n_cols],
            );
            let out_s = &mut out[s * c_out * n_cols..(s + 1) * c_out * n_cols];
            self.matmul_into(w, &ws[..rows * n_cols], out_s, c_out, rows, n_cols);
            if let Some(bias) = bias {
                for (co, out_row) in out_s.chunks_mut(n_cols).enumerate() {
                    for v in out_row {
                        *v += bias[co];
                    }
                }
            }
        }
    }

    /// Conv weight gradient: `dw += Σ_s grad[s] · im2col(x[s])ᵀ` with
    /// `dw: [c_out, c_in·k²]` (accumulated; zero it for a plain gradient).
    #[allow(clippy::too_many_arguments)]
    fn conv2d_backward_weights(
        &self,
        x: &[f32],
        grad: &[f32],
        dw: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, img_len) = check_conv2d_args(x, dw, None, grad, batch, c_out, geo);
        ws.resize(rows * n_cols, 0.0);
        for s in 0..batch {
            self.im2col(
                &x[s * img_len..(s + 1) * img_len],
                geo,
                &mut ws[..rows * n_cols],
            );
            let g_s = &grad[s * c_out * n_cols..(s + 1) * c_out * n_cols];
            self.matmul_nt_into(g_s, &ws[..rows * n_cols], dw, c_out, n_cols, rows);
        }
    }

    /// Conv input gradient: `dx[s] += col2im(Wᵀ · grad[s])` per sample.
    /// `dx` must be zero-initialized by the caller for a plain gradient.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_backward_input(
        &self,
        w: &[f32],
        grad: &[f32],
        dx: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, img_len) = check_conv2d_args(dx, w, None, grad, batch, c_out, geo);
        ws.resize(rows * n_cols, 0.0);
        for s in 0..batch {
            let g_s = &grad[s * c_out * n_cols..(s + 1) * c_out * n_cols];
            let dcols = &mut ws[..rows * n_cols];
            dcols.fill(0.0);
            self.matmul_tn_into(w, g_s, dcols, c_out, rows, n_cols);
            let dx_s = &mut dx[s * img_len..(s + 1) * img_len];
            self.col2im(&ws[..rows * n_cols], geo, dx_s);
        }
    }

    /// Grouped GEMM with a shared left operand: `outs[g] += a · bs[g]`
    /// for every member of a same-shape group. Backends may pack `a`'s
    /// panels once and reuse them across the whole group (the
    /// [`Parallel`] override does; the default just loops).
    fn matmul_grouped_into(
        &self,
        a: &[f32],
        bs: &[&[f32]],
        outs: &mut [&mut [f32]],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check_grouped_args(a, bs, outs, m, k, n);
        for (b, out) in bs.iter().zip(outs.iter_mut()) {
            self.matmul_into(a, b, out, m, k, n);
        }
    }
}

/// Validates the shared buffer-shape contract of the `conv2d_*` entry
/// points and returns `(col_rows, col_cols, image_len)`. The `w`/`out`
/// arguments double as `dw`/`grad` in the backward variants — the size
/// relations are identical.
fn check_conv2d_args(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    out: &[f32],
    batch: usize,
    c_out: usize,
    geo: &Conv2dGeometry,
) -> (usize, usize, usize) {
    let rows = geo.col_rows();
    let n_cols = geo.col_cols();
    let img_len = geo.c_in * geo.h * geo.w;
    assert_eq!(x.len(), batch * img_len, "image-shaped buffer size");
    assert_eq!(w.len(), c_out * rows, "weight-shaped buffer size");
    assert_eq!(out.len(), batch * c_out * n_cols, "cols-shaped buffer size");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), c_out, "bias buffer size");
    }
    (rows, n_cols, img_len)
}

/// Validates the grouped-GEMM buffer contract.
fn check_grouped_args(a: &[f32], bs: &[&[f32]], outs: &[&mut [f32]], m: usize, k: usize, n: usize) {
    assert_eq!(bs.len(), outs.len(), "group size mismatch");
    assert_eq!(a.len(), m * k, "lhs buffer size");
    for (g, (b, out)) in bs.iter().zip(outs.iter()).enumerate() {
        assert_eq!(b.len(), k * n, "rhs buffer size (group member {g})");
        assert_eq!(out.len(), m * n, "out buffer size (group member {g})");
    }
}

// ------------------------------------------------------------------ Scalar

/// The single-threaded reference backend (the seed repository's original
/// i-k-j kernels).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalar;

impl Backend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_into(a, b, out, m, k, n);
    }

    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_tn_into(a, b, out, m, k, n);
    }

    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
        matmul_nt_into(a, b, out, m, n, k);
    }

    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]) {
        crate::im2col::im2col(img, geo, cols);
    }

    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]) {
        crate::im2col::col2im(cols, geo, img_grad);
    }
}

// ---------------------------------------------------------------- Parallel

/// Minimum multiply-accumulate count before a kernel will spawn threads;
/// below this, scoped-thread setup costs more than it buys.
const PAR_MACS_THRESHOLD: usize = 4 << 20;

/// Minimum im2col/col2im buffer size before lowering is threaded.
const PAR_COLS_THRESHOLD: usize = 1 << 17;

/// The optimized backend: register-tiled SIMD kernels plus row-parallel
/// execution across scoped threads.
///
/// Results are bit-identical for any thread count (rows are partitioned,
/// never split), so changing the parallelism never changes numerics.
#[derive(Debug, Clone, Copy)]
pub struct Parallel {
    threads: usize,
}

impl Parallel {
    /// A backend using the full hardware thread budget.
    pub fn new() -> Self {
        Parallel {
            threads: crate::parallel::max_threads(),
        }
    }

    /// A backend capped at `threads` kernel threads (`0` means the full
    /// hardware budget; `1` keeps the fast kernels but never spawns).
    pub fn with_threads(threads: usize) -> Self {
        Parallel {
            threads: if threads == 0 {
                crate::parallel::max_threads()
            } else {
                threads
            },
        }
    }

    /// The configured kernel-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads to actually use for a problem with `rows` independent
    /// output rows and `macs` multiply-accumulates.
    fn plan(&self, rows: usize, macs: usize) -> usize {
        if self.threads <= 1 || macs < PAR_MACS_THRESHOLD {
            1
        } else {
            self.threads.min(rows.max(1))
        }
    }
}

impl Default for Parallel {
    fn default() -> Self {
        Parallel::new()
    }
}

/// Splits `out` into per-thread contiguous row chunks and runs `body` on
/// each chunk in a scoped thread. `body(r0, r1, chunk)` sees rows
/// `[r0, r1)`.
///
/// Chunk boundaries are aligned to multiples of 4 rows so they coincide
/// with the kernels' register-tile boundaries — that makes results
/// bit-identical for every thread count (each row's arithmetic is
/// independent of which chunk it lands in).
pub(crate) fn for_row_chunks<F>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    threads: usize,
    body: F,
) where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    if threads <= 1 || rows == 0 {
        body(0, rows, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads).next_multiple_of(4);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + chunk_rows).min(rows);
            let (chunk, tail) = rest.split_at_mut((r1 - r0) * row_len);
            rest = tail;
            let body = &body;
            s.spawn(move || body(r0, r1, chunk));
            r0 = r1;
        }
    });
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs buffer size");
        assert_eq!(b.len(), k * n, "rhs buffer size");
        assert_eq!(out.len(), m * n, "out buffer size");
        let threads = self.plan(m, m * k * n);
        for_row_chunks(out, m, n, threads, |r0, r1, chunk| {
            crate::pack::gemm(
                r1 - r0,
                k,
                n,
                chunk,
                n,
                |i, p| a[(r0 + i) * k + p],
                crate::pack::BSrc::Rows(&|p, j0, dst| {
                    let w = dst.len();
                    dst.copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
                }),
            );
        });
    }

    fn matmul_tn_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        assert_eq!(a.len(), m * k, "lhs buffer size");
        assert_eq!(b.len(), m * n, "rhs buffer size");
        assert_eq!(out.len(), k * n, "out buffer size");
        let threads = self.plan(k, m * k * n);
        // Output rows are A's columns; the reduction runs over A/B rows.
        for_row_chunks(out, k, n, threads, |p0, p1, chunk| {
            crate::pack::gemm(
                p1 - p0,
                m,
                n,
                chunk,
                n,
                |i, red| a[red * k + p0 + i],
                crate::pack::BSrc::Rows(&|red, j0, dst| {
                    let w = dst.len();
                    dst.copy_from_slice(&b[red * n + j0..red * n + j0 + w]);
                }),
            );
        });
    }

    fn matmul_nt_into(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
        assert_eq!(a.len(), m * n, "lhs buffer size");
        assert_eq!(b.len(), k * n, "rhs buffer size");
        assert_eq!(out.len(), m * k, "out buffer size");
        let threads = self.plan(m, m * k * n);
        // B is read transposed, but its *source* rows are contiguous:
        // the Cols packing streams each `b` row once and scatters it
        // into the L1-resident panel.
        for_row_chunks(out, m, k, threads, |r0, r1, chunk| {
            crate::pack::gemm(
                r1 - r0,
                n,
                k,
                chunk,
                k,
                |i, p| a[(r0 + i) * n + p],
                crate::pack::BSrc::Cols(&|j, p0, dst| {
                    let w = dst.len();
                    dst.copy_from_slice(&b[j * n + p0..j * n + p0 + w]);
                }),
            );
        });
    }

    fn im2col(&self, img: &[f32], geo: &Conv2dGeometry, cols: &mut [f32]) {
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        assert_eq!(img.len(), geo.c_in * geo.h * geo.w, "image buffer size");
        assert_eq!(cols.len(), rows * n_cols, "cols buffer size");
        let threads = if self.threads > 1 && cols.len() >= PAR_COLS_THRESHOLD {
            self.threads.min(rows.max(1))
        } else {
            1
        };
        for_row_chunks(cols, rows, n_cols, threads, |r0, r1, chunk| {
            im2col_row_range(img, geo, chunk, r0, r1);
        });
    }

    fn col2im(&self, cols: &[f32], geo: &Conv2dGeometry, img_grad: &mut [f32]) {
        let plane = geo.h * geo.w;
        assert_eq!(img_grad.len(), geo.c_in * plane, "image buffer size");
        assert_eq!(
            cols.len(),
            geo.col_rows() * geo.col_cols(),
            "cols buffer size"
        );
        let threads = if self.threads > 1 && cols.len() >= PAR_COLS_THRESHOLD {
            self.threads.min(geo.c_in.max(1))
        } else {
            1
        };
        for_row_chunks(img_grad, geo.c_in, plane, threads, |c0, c1, chunk| {
            col2im_channel_range(cols, geo, chunk, c0, c1);
        });
    }

    fn conv2d_forward(
        &self,
        x: &[f32],
        w: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, _) = check_conv2d_args(x, w, bias, out, batch, c_out, geo);
        let threads = self.plan(batch, batch * c_out * rows * n_cols);
        crate::pack::conv2d_forward_fused(x, w, bias, out, batch, c_out, geo, ws, threads);
    }

    fn conv2d_backward_weights(
        &self,
        x: &[f32],
        grad: &[f32],
        dw: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        _ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, _) = check_conv2d_args(x, dw, None, grad, batch, c_out, geo);
        let threads = self.plan(c_out, batch * c_out * rows * n_cols);
        crate::pack::conv2d_backward_weights_fused(x, grad, dw, batch, c_out, geo, threads);
    }

    fn conv2d_backward_input(
        &self,
        w: &[f32],
        grad: &[f32],
        dx: &mut [f32],
        batch: usize,
        c_out: usize,
        geo: &Conv2dGeometry,
        ws: &mut Vec<f32>,
    ) {
        let (rows, n_cols, _) = check_conv2d_args(dx, w, None, grad, batch, c_out, geo);
        let threads = self.plan(batch, batch * c_out * rows * n_cols);
        crate::pack::conv2d_backward_input_fused(w, grad, dx, batch, c_out, geo, ws, threads);
    }

    fn matmul_grouped_into(
        &self,
        a: &[f32],
        bs: &[&[f32]],
        outs: &mut [&mut [f32]],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check_grouped_args(a, bs, outs, m, k, n);
        let threads = self.plan(bs.len(), bs.len() * m * k * n);
        crate::pack::matmul_grouped(a, bs, outs, m, k, n, threads);
    }
}

// ----------------------------------------------------------- default pick

fn default_cell() -> &'static RwLock<BackendHandle> {
    static CELL: OnceLock<RwLock<BackendHandle>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Arc::new(Parallel::new())))
}

/// The process-wide default backend (initially [`Parallel`] with the full
/// hardware thread budget). Newly constructed layers pick this up.
pub fn default_backend() -> BackendHandle {
    default_cell().read().expect("backend lock").clone()
}

/// Replaces the process-wide default backend.
pub fn set_default_backend(backend: BackendHandle) {
    *default_cell().write().expect("backend lock") = backend;
}

/// A backend handle budgeted to `threads` kernel threads: `0` returns the
/// process default, otherwise a [`Parallel`] capped at `threads`.
///
/// This is what client-level parallel loops hand to each worker so that
/// outer × inner parallelism never oversubscribes the machine.
pub fn backend_for_threads(threads: usize) -> BackendHandle {
    if threads == 0 {
        default_backend()
    } else {
        Arc::new(Parallel::with_threads(threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_support::arb;

    fn assert_close(got: &[f32], want: &[f32], tag: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-4 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "{tag}[{i}]: {g} vs {w}");
        }
    }

    /// Shapes chosen to hit every tile tail: sub-tile, exact-tile, ragged.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (4, 16, 16),
        (5, 17, 33),
        (8, 300, 24),
        (33, 7, 130),
        (64, 64, 64),
    ];

    #[test]
    fn parallel_matmul_matches_scalar() {
        for &threads in &[1, 3] {
            let backend = Parallel::with_threads(threads);
            for &(m, k, n) in SHAPES {
                let a = arb(m * k, 1);
                let b = arb(k * n, 2);
                let mut want = arb(m * n, 3);
                let mut got = want.clone();
                Scalar.matmul_into(&a, &b, &mut want, m, k, n);
                backend.matmul_into(&a, &b, &mut got, m, k, n);
                assert_close(&got, &want, &format!("nn {m}x{k}x{n} t{threads}"));
            }
        }
    }

    #[test]
    fn parallel_tn_matches_scalar() {
        for &(m, k, n) in SHAPES {
            let a = arb(m * k, 4);
            let b = arb(m * n, 5);
            let mut want = arb(k * n, 6);
            let mut got = want.clone();
            Scalar.matmul_tn_into(&a, &b, &mut want, m, k, n);
            Parallel::with_threads(2).matmul_tn_into(&a, &b, &mut got, m, k, n);
            assert_close(&got, &want, &format!("tn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_nt_matches_scalar() {
        for &(m, n, k) in SHAPES {
            let a = arb(m * n, 7);
            let b = arb(k * n, 8);
            let mut want = arb(m * k, 9);
            let mut got = want.clone();
            Scalar.matmul_nt_into(&a, &b, &mut want, m, n, k);
            Parallel::with_threads(2).matmul_nt_into(&a, &b, &mut got, m, n, k);
            assert_close(&got, &want, &format!("nt {m}x{n}x{k}"));
        }
    }

    #[test]
    fn parallel_im2col_matches_scalar() {
        let geo = Conv2dGeometry {
            c_in: 3,
            h: 9,
            w: 7,
            k: 3,
            stride: 2,
            pad: 1,
        };
        let img = arb(geo.c_in * geo.h * geo.w, 10);
        let mut want = vec![0.0; geo.col_rows() * geo.col_cols()];
        let mut got = want.clone();
        Scalar.im2col(&img, &geo, &mut want);
        Parallel::with_threads(2).im2col(&img, &geo, &mut got);
        assert_eq!(want, got);

        let cols = arb(want.len(), 11);
        let mut gw = vec![0.0; img.len()];
        let mut gg = gw.clone();
        Scalar.col2im(&cols, &geo, &mut gw);
        Parallel::with_threads(2).col2im(&cols, &geo, &mut gg);
        assert_close(&gg, &gw, "col2im");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Force the threaded path with a problem above the MACs threshold.
        let (m, k, n) = (64, 128, 640);
        let a = arb(m * k, 12);
        let b = arb(k * n, 13);
        let mut one = vec![0.0; m * n];
        Parallel::with_threads(1).matmul_into(&a, &b, &mut one, m, k, n);
        for threads in [2, 3, 5] {
            let mut many = vec![0.0; m * n];
            Parallel::with_threads(threads).matmul_into(&a, &b, &mut many, m, k, n);
            assert_eq!(one, many, "threads={threads} must be bit-identical");
        }
    }

    /// The transposed kernels must also survive real row chunking: these
    /// shapes sit above `PAR_MACS_THRESHOLD`, so with threads > 1 the
    /// chunk offsets (`p0 > 0` in tn, row offsets in nt) are exercised,
    /// including ragged last chunks (64 rows over 3 threads).
    #[test]
    fn threaded_tn_and_nt_match_scalar_and_single_thread() {
        // tn: out has k = 64 rows; macs = 640·64·128 ≈ 5.2M.
        let (m, k, n) = (640, 64, 128);
        let a = arb(m * k, 14);
        let b = arb(m * n, 15);
        let mut want = vec![0.0; k * n];
        Scalar.matmul_tn_into(&a, &b, &mut want, m, k, n);
        let mut one = vec![0.0; k * n];
        Parallel::with_threads(1).matmul_tn_into(&a, &b, &mut one, m, k, n);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; k * n];
            Parallel::with_threads(threads).matmul_tn_into(&a, &b, &mut got, m, k, n);
            assert_eq!(one, got, "tn threads={threads} must be bit-identical");
            assert_close(&got, &want, &format!("tn threaded t{threads}"));
        }

        // nt: out has m = 64 rows; macs identical.
        let (m, n, k) = (64, 640, 128);
        let a = arb(m * n, 16);
        let b = arb(k * n, 17);
        let mut want = vec![0.0; m * k];
        Scalar.matmul_nt_into(&a, &b, &mut want, m, n, k);
        let mut one = vec![0.0; m * k];
        Parallel::with_threads(1).matmul_nt_into(&a, &b, &mut one, m, n, k);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; m * k];
            Parallel::with_threads(threads).matmul_nt_into(&a, &b, &mut got, m, n, k);
            assert_eq!(one, got, "nt threads={threads} must be bit-identical");
            assert_close(&got, &want, &format!("nt threaded t{threads}"));
        }
    }

    /// im2col/col2im chunk decomposition (`row0 > 0`, `c0 > 0`) must hold
    /// on a geometry large enough to cross `PAR_COLS_THRESHOLD`.
    #[test]
    fn threaded_im2col_col2im_match_scalar() {
        let geo = Conv2dGeometry {
            c_in: 16,
            h: 34,
            w: 34,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert!(
            geo.col_rows() * geo.col_cols() >= super::PAR_COLS_THRESHOLD,
            "geometry must cross the parallel threshold"
        );
        let img = arb(geo.c_in * geo.h * geo.w, 18);
        let mut want = vec![0.0; geo.col_rows() * geo.col_cols()];
        Scalar.im2col(&img, &geo, &mut want);
        for threads in [2, 3, 5] {
            let mut got = vec![0.0; want.len()];
            Parallel::with_threads(threads).im2col(&img, &geo, &mut got);
            assert_eq!(want, got, "im2col threads={threads}");
        }

        let cols = arb(want.len(), 19);
        let mut gw = vec![0.0; img.len()];
        Scalar.col2im(&cols, &geo, &mut gw);
        for threads in [2, 3, 5] {
            let mut gg = vec![0.0; img.len()];
            Parallel::with_threads(threads).col2im(&cols, &geo, &mut gg);
            assert_eq!(gw, gg, "col2im threads={threads}");
        }
    }

    /// NOTE: this test swaps the process-wide default backend while the
    /// rest of the binary runs concurrently; every other test that touches
    /// `default_backend()` (e.g. `Tensor::matmul` unit tests) must stay
    /// correct under either backend (they use exact-integer cases).
    #[test]
    fn default_backend_is_settable() {
        let initial = default_backend();
        assert_eq!(initial.name(), "parallel");
        set_default_backend(Arc::new(Scalar));
        assert_eq!(default_backend().name(), "scalar");
        set_default_backend(initial);
        assert_eq!(backend_for_threads(0).name(), "parallel");
        assert_eq!(backend_for_threads(2).name(), "parallel");
    }
}
