//! Property-based tests for the tensor kernels: algebraic laws that must
//! hold for arbitrary shapes and values, and backend-equivalence laws —
//! the `Parallel` backend must agree with the `Scalar` reference on every
//! kernel for arbitrary shapes and accumulation state. (These shapes sit
//! below the backend's parallelization thresholds, so they pin down the
//! single-thread kernels and tile tails; the threaded chunking paths have
//! dedicated above-threshold unit tests in `backend.rs`.)

use fp_tensor::{col2im, im2col, Backend, Conv2dGeometry, Parallel, Scalar, Tensor};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

/// Relative/absolute agreement for backend equivalence: FMA kernels fuse
/// rounding, so exact equality is not expected — 1e-5 relative is.
fn assert_within(got: &[f32], want: &[f32], what: &str) -> Result<(), String> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-5f32.max(1e-5 * w.abs().max(g.abs()));
        if (g - w).abs() > tol {
            return Err(format!("{what}[{i}]: parallel {g} vs scalar {w}"));
        }
    }
    Ok(())
}

fn rand_vec(len: usize, rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    use rand::Rng;
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Elementwise addition is commutative and subtraction is its inverse.
    #[test]
    fn add_commutes_and_sub_inverts(a in finite_vec(12), b in finite_vec(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        let ab = ta.add(&tb);
        let ba = tb.add(&ta);
        prop_assert_eq!(ab.data(), ba.data());
        let back = ab.sub(&tb);
        for (x, y) in back.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Scaling distributes over addition: k·(a+b) = k·a + k·b.
    #[test]
    fn scale_distributes(a in finite_vec(8), b in finite_vec(8), k in -5.0f32..5.0) {
        let ta = Tensor::from_vec(a, &[8]);
        let tb = Tensor::from_vec(b, &[8]);
        let lhs = ta.add(&tb).scale(k);
        let rhs = ta.scale(k).add(&tb.scale(k));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// Matmul is linear in its left argument:
    /// (a1 + a2)·b = a1·b + a2·b.
    #[test]
    fn matmul_left_linear(
        a1 in finite_vec(6),
        a2 in finite_vec(6),
        b in finite_vec(6),
    ) {
        let ta1 = Tensor::from_vec(a1, &[2, 3]);
        let ta2 = Tensor::from_vec(a2, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let lhs = ta1.add(&ta2).matmul(&tb);
        let rhs = ta1.matmul(&tb).add(&ta2.matmul(&tb));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 0.5, "{} vs {}", x, y);
        }
    }

    /// Identity is neutral for matmul on both sides.
    #[test]
    fn matmul_identity_neutral(a in finite_vec(9)) {
        let ta = Tensor::from_vec(a, &[3, 3]);
        let i = Tensor::eye(3);
        for prod in [ta.matmul(&i), i.matmul(&ta)] {
            for (x, y) in prod.data().iter().zip(ta.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }

    /// Transposition is an involution and swaps matmul order:
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_antihomomorphism(a in finite_vec(6), b in finite_vec(6)) {
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let lhs = ta.matmul(&tb).transpose2();
        let rhs = tb.transpose2().matmul(&ta.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 0.5);
        }
    }

    /// ‖a‖₂² equals ⟨a, a⟩, and the ℓ∞ norm bounds all coordinates.
    #[test]
    fn norm_laws(a in finite_vec(16)) {
        let t = Tensor::from_vec(a, &[16]);
        let n2 = t.norm_l2();
        prop_assert!((n2 * n2 - t.dot(&t)).abs() < 0.3 + 1e-3 * n2 * n2);
        let ninf = t.norm_linf();
        prop_assert!(t.data().iter().all(|v| v.abs() <= ninf + 1e-6));
    }

    /// `im2col`/`col2im` satisfy the adjoint identity
    /// ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩ for random geometry.
    #[test]
    fn im2col_adjoint(
        c in 1usize..4,
        h in 3usize..8,
        w in 3usize..8,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let geo = Conv2dGeometry { c_in: c, h, w, k: 3, stride, pad };
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let mut rng = fp_tensor::seeded_rng(seed);
        let x = Tensor::rand_uniform(&[c * h * w], -1.0, 1.0, &mut rng);
        let ylen = geo.col_rows() * geo.col_cols();
        let y = Tensor::rand_uniform(&[ylen], -1.0, 1.0, &mut rng);
        let mut ax = vec![0.0; ylen];
        im2col(x.data(), &geo, &mut ax);
        let mut aty = vec![0.0; x.numel()];
        col2im(y.data(), &geo, &mut aty);
        let lhs: f32 = ax.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Stacking then indexing is the identity on batches.
    #[test]
    fn stack_index_roundtrip(seed in 0u64..500, n in 1usize..5) {
        let mut rng = fp_tensor::seeded_rng(seed);
        let parts: Vec<Tensor> = (0..n)
            .map(|_| Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng))
            .collect();
        let stacked = Tensor::stack(&parts);
        prop_assert_eq!(stacked.shape(), &[n, 2, 3]);
        for (i, p) in parts.iter().enumerate() {
            let slice = stacked.index_batch(i);
            prop_assert_eq!(slice.data(), p.data());
        }
    }

    /// Clamp really bounds, and is idempotent.
    #[test]
    fn clamp_bounds_and_idempotent(a in finite_vec(10), lo in -2.0f32..0.0, hi in 0.0f32..2.0) {
        let t = Tensor::from_vec(a, &[10]);
        let c = t.clamp(lo, hi);
        prop_assert!(c.min() >= lo && c.max() <= hi);
        let twice = c.clamp(lo, hi);
        prop_assert_eq!(twice.data(), c.data());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Parallel` matmul (`C += A·B`) agrees with the `Scalar` reference
    /// within 1e-5 for arbitrary shapes and prior accumulation state.
    #[test]
    fn parallel_matmul_matches_scalar(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = fp_tensor::seeded_rng(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let acc = rand_vec(m * n, &mut rng);
        let mut want = acc.clone();
        let mut got = acc;
        Scalar.matmul_into(&a, &b, &mut want, m, k, n);
        Parallel::with_threads(1).matmul_into(&a, &b, &mut got, m, k, n);
        assert_within(&got, &want, "nn")?;
    }

    /// Same for the transposed-left kernel (`C += Aᵀ·B`, weight grads).
    #[test]
    fn parallel_matmul_tn_matches_scalar(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = fp_tensor::seeded_rng(seed ^ 0x71);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(m * n, &mut rng);
        let acc = rand_vec(k * n, &mut rng);
        let mut want = acc.clone();
        let mut got = acc;
        Scalar.matmul_tn_into(&a, &b, &mut want, m, k, n);
        Parallel::with_threads(1).matmul_tn_into(&a, &b, &mut got, m, k, n);
        assert_within(&got, &want, "tn")?;
    }

    /// Same for the transposed-right kernel (`C += A·Bᵀ`, input grads).
    #[test]
    fn parallel_matmul_nt_matches_scalar(
        m in 1usize..40,
        n in 1usize..48,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = fp_tensor::seeded_rng(seed ^ 0x72);
        let a = rand_vec(m * n, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let acc = rand_vec(m * k, &mut rng);
        let mut want = acc.clone();
        let mut got = acc;
        Scalar.matmul_nt_into(&a, &b, &mut want, m, n, k);
        Parallel::with_threads(1).matmul_nt_into(&a, &b, &mut got, m, n, k);
        assert_within(&got, &want, "nt")?;
    }

    /// `Parallel` im2col/col2im agree with the `Scalar` reference exactly
    /// (pure data movement) for random convolution geometry.
    #[test]
    fn parallel_im2col_matches_scalar(
        c in 1usize..5,
        h in 3usize..10,
        w in 3usize..10,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let geo = Conv2dGeometry { c_in: c, h, w, k: 3, stride, pad };
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let mut rng = fp_tensor::seeded_rng(seed ^ 0x73);
        let img = rand_vec(c * h * w, &mut rng);
        let par = Parallel::with_threads(1);

        let mut want = vec![0.0; geo.col_rows() * geo.col_cols()];
        let mut got = want.clone();
        Scalar.im2col(&img, &geo, &mut want);
        par.im2col(&img, &geo, &mut got);
        prop_assert_eq!(&want, &got);

        let cols = rand_vec(want.len(), &mut rng);
        let acc = rand_vec(img.len(), &mut rng);
        let mut gw = acc.clone();
        let mut gg = acc;
        Scalar.col2im(&cols, &geo, &mut gw);
        par.col2im(&cols, &geo, &mut gg);
        assert_within(&gg, &gw, "col2im")?;
    }

    /// The backend contract is accumulation: running a matmul twice adds
    /// the product twice, on both backends.
    #[test]
    fn backends_accumulate(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        seed in 0u64..200,
    ) {
        let mut rng = fp_tensor::seeded_rng(seed ^ 0x74);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        for backend in [&Scalar as &dyn Backend, &Parallel::with_threads(2)] {
            let mut once = vec![0.0; m * n];
            backend.matmul_into(&a, &b, &mut once, m, k, n);
            let mut twice = vec![0.0; m * n];
            backend.matmul_into(&a, &b, &mut twice, m, k, n);
            backend.matmul_into(&a, &b, &mut twice, m, k, n);
            for (o, t) in once.iter().zip(&twice) {
                prop_assert!(
                    (2.0 * o - t).abs() <= 1e-4 * (1.0 + t.abs()),
                    "accumulation broken: {} vs {}", 2.0 * o, t
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stochastic quantization round-trip error is bounded by one
    /// quantization step (`scale / L`) per element, for arbitrary inputs,
    /// code widths, and chunkings.
    #[test]
    fn quant_roundtrip_error_bounded_by_chunk_scale(
        full in proptest::collection::vec(-50.0f32..50.0, 300),
        len in 1usize..300,
        bits in 2u32..9,
        chunk in 1usize..64,
        seed in 0u64..1000,
    ) {
        let x = &full[..len];
        let (codes, scales) = fp_tensor::quant::quantize(x, bits, chunk, seed);
        let d = fp_tensor::quant::dequantize(&codes, &scales, bits, chunk);
        let l = fp_tensor::quant::max_level(bits) as f32;
        for (ci, (xs, ds)) in x.chunks(chunk).zip(d.chunks(chunk)).enumerate() {
            let bound = scales[ci] / l * (1.0 + 1e-5) + 1e-7;
            for (a, b) in xs.iter().zip(ds) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "chunk {} at {} bits: |{} - {}| > {}", ci, bits, a, b, bound
                );
            }
        }
    }

    /// Error feedback on a constant stream drains: feeding `c + residual`
    /// back through the quantizer every step keeps the residual within one
    /// quantization step (it never accumulates), so the summed dequantized
    /// mass telescopes to `T·c ± one step` — the carried error is bounded
    /// independent of `T` and the per-step average converges to `c`.
    #[test]
    fn quant_ef_drains_on_constant_stream(
        c in 0.01f32..10.0,
        bits in 2u32..9,
        seed in 0u64..1000,
        len in 1usize..64,
    ) {
        let l = fp_tensor::quant::max_level(bits) as f32;
        let steps = 16u64;
        let mut r = vec![0.0f32; len];
        let mut sum_d = vec![0.0f32; len];
        let mut bound = 0.0f32;
        for t in 0..steps {
            let y: Vec<f32> = r.iter().map(|ri| c + ri).collect();
            let (codes, scales) = fp_tensor::quant::quantize(&y, bits, len, seed ^ (t << 10));
            let d = fp_tensor::quant::dequantize(&codes, &scales, bits, len);
            let step = scales[0] / l * (1.0 + 1e-5) + 1e-6;
            bound = bound.max(step);
            for i in 0..len {
                r[i] = y[i] - d[i];
                sum_d[i] += d[i];
                prop_assert!(
                    r[i].abs() <= step,
                    "step {}: residual {} exceeds one quantization step {}", t, r[i], step
                );
            }
        }
        let target = steps as f32 * c;
        for &s in &sum_d {
            prop_assert!(
                (s - target).abs() <= 2.0 * bound + 1e-3 * target.abs(),
                "telescoped mass {} drifted from {} beyond carried bound {}", s, target, bound
            );
        }
    }
}
