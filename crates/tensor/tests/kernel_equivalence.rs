//! Equivalence laws for the packed-GEMM engine's public entry points:
//!
//! * **bitwise thread invariance** — `Parallel` results are identical
//!   bytes at 1, 2, and 4 worker threads, on shapes large enough that
//!   the planner actually splits work;
//! * **Scalar ≡ Parallel at 1e-5** — the fused conv and grouped-GEMM
//!   entry points agree with the materialized reference path for random
//!   (including skinny and degenerate) shapes.
//!
//! Tile-config and cross-ISA bitwise invariance are pinned by the unit
//! tests inside `fp_tensor::pack`, which can reach the internal tile
//! knobs directly.

use fp_tensor::{Backend, Conv2dGeometry, Parallel, Scalar};
use proptest::prelude::*;

fn rand_vec(len: usize, rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    use rand::Rng;
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

fn assert_within(got: &[f32], want: &[f32], what: &str) -> Result<(), String> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-5f32.max(1e-5 * w.abs().max(g.abs()));
        if (g - w).abs() > tol {
            return Err(format!("{what}[{i}]: parallel {g} vs scalar {w}"));
        }
    }
    Ok(())
}

/// GEMM flavors at a shape big enough (≈5.2M MACs) that the planner
/// splits rows: 1, 2, and 4 threads must produce identical bytes.
#[test]
fn gemm_flavors_bitwise_across_threads() {
    let mut rng = fp_tensor::seeded_rng(0xB17);
    let (m, k, n) = (160, 64, 512);
    let a = rand_vec(m * k, &mut rng);
    let b = rand_vec(k * n, &mut rng);
    let one = Parallel::with_threads(1);
    let mut want = vec![0.0; m * n];
    one.matmul_into(&a, &b, &mut want, m, k, n);
    for threads in [2, 4] {
        let mut got = vec![0.0; m * n];
        Parallel::with_threads(threads).matmul_into(&a, &b, &mut got, m, k, n);
        assert_eq!(want, got, "matmul threads={threads}");
    }
    // tn: output rows are A's columns.
    let at = rand_vec(512 * 160, &mut rng);
    let bt = rand_vec(512 * 64, &mut rng);
    let mut want = vec![0.0; 160 * 64];
    one.matmul_tn_into(&at, &bt, &mut want, 512, 160, 64);
    for threads in [2, 4] {
        let mut got = vec![0.0; 160 * 64];
        Parallel::with_threads(threads).matmul_tn_into(&at, &bt, &mut got, 512, 160, 64);
        assert_eq!(want, got, "tn threads={threads}");
    }
    // nt: B read transposed through the Cols packer.
    let an = rand_vec(160 * 512, &mut rng);
    let bn = rand_vec(64 * 512, &mut rng);
    let mut want = vec![0.0; 160 * 64];
    one.matmul_nt_into(&an, &bn, &mut want, 160, 512, 64);
    for threads in [2, 4] {
        let mut got = vec![0.0; 160 * 64];
        Parallel::with_threads(threads).matmul_nt_into(&an, &bn, &mut got, 160, 512, 64);
        assert_eq!(want, got, "nt threads={threads}");
    }
}

/// Fused conv entry points above the parallel threshold (≈9.4M MACs):
/// identical bytes at 1, 2, and 4 threads.
#[test]
fn fused_conv_bitwise_across_threads() {
    let geo = Conv2dGeometry {
        c_in: 16,
        h: 16,
        w: 16,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let (batch, c_out) = (8usize, 32usize);
    let rows = geo.col_rows();
    let n_cols = geo.col_cols();
    let img_len = geo.c_in * geo.h * geo.w;
    let mut rng = fp_tensor::seeded_rng(0xC0);
    let x = rand_vec(batch * img_len, &mut rng);
    let w = rand_vec(c_out * rows, &mut rng);
    let bias = rand_vec(c_out, &mut rng);
    let g = rand_vec(batch * c_out * n_cols, &mut rng);

    let run = |threads: usize| {
        let be = Parallel::with_threads(threads);
        let mut ws = Vec::new();
        let mut out = vec![0.0; batch * c_out * n_cols];
        be.conv2d_forward(&x, &w, Some(&bias), &mut out, batch, c_out, &geo, &mut ws);
        let mut dw = vec![0.0; c_out * rows];
        be.conv2d_backward_weights(&x, &g, &mut dw, batch, c_out, &geo, &mut ws);
        let mut dx = vec![0.0; batch * img_len];
        be.conv2d_backward_input(&w, &g, &mut dx, batch, c_out, &geo, &mut ws);
        (out, dw, dx)
    };
    let want = run(1);
    for threads in [2, 4] {
        let got = run(threads);
        assert_eq!(want.0, got.0, "forward threads={threads}");
        assert_eq!(want.1, got.1, "dW threads={threads}");
        assert_eq!(want.2, got.2, "dX threads={threads}");
    }
}

/// Grouped GEMM above the member-fanout threshold: identical bytes at
/// 1, 2, and 4 threads, and identical to the member-at-a-time loop.
#[test]
fn grouped_gemm_bitwise_across_threads() {
    let (m, k, n, groups) = (64, 64, 256, 6);
    let mut rng = fp_tensor::seeded_rng(0xD1);
    let a = rand_vec(m * k, &mut rng);
    let b_all: Vec<Vec<f32>> = (0..groups).map(|_| rand_vec(k * n, &mut rng)).collect();
    let run = |threads: usize| {
        let be = Parallel::with_threads(threads);
        let mut outs: Vec<Vec<f32>> = vec![vec![0.0; m * n]; groups];
        let bs: Vec<&[f32]> = b_all.iter().map(|b| b.as_slice()).collect();
        let mut out_refs: Vec<&mut [f32]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
        be.matmul_grouped_into(&a, &bs, &mut out_refs, m, k, n);
        outs
    };
    let want = run(1);
    for threads in [2, 4] {
        assert_eq!(want, run(threads), "grouped threads={threads}");
    }
    // The grouped call is the same computation as looping matmul_into.
    let mut looped: Vec<Vec<f32>> = vec![vec![0.0; m * n]; groups];
    for (b, out) in b_all.iter().zip(looped.iter_mut()) {
        Parallel::with_threads(1).matmul_into(&a, b, out, m, k, n);
    }
    assert_eq!(want, looped, "grouped vs looped");
}

/// The PR-6 regression probe, kept as a pinned suite: k=5 pad=2
/// stride=1 geometries where a packed B span ends inside the left
/// padding (`run < -ix0`), which used to underflow the image-row index
/// in `im2col_span`. Covers forward and both backward kernels, and
/// checks the Parallel results are bitwise thread-invariant on these
/// degenerate shapes too.
#[test]
fn conv_left_pad_short_span() {
    for (h, w) in [(5usize, 31usize), (5, 5), (3, 1)] {
        let geo = Conv2dGeometry {
            c_in: 1,
            h,
            w,
            k: 5,
            stride: 1,
            pad: 2,
        };
        let (batch, c_out) = (1usize, 1usize);
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        let img_len = geo.c_in * geo.h * geo.w;
        let x: Vec<f32> = (0..batch * img_len).map(|i| i as f32 * 0.01).collect();
        let wts: Vec<f32> = (0..c_out * rows).map(|i| i as f32 * 0.001).collect();
        let g: Vec<f32> = (0..batch * c_out * n_cols)
            .map(|i| (i as f32 * 0.02).sin())
            .collect();
        let run = |be: &dyn Backend| {
            let mut ws = Vec::new();
            let mut out = vec![0.0; batch * c_out * n_cols];
            be.conv2d_forward(&x, &wts, None, &mut out, batch, c_out, &geo, &mut ws);
            let mut dw = vec![0.0; c_out * rows];
            be.conv2d_backward_weights(&x, &g, &mut dw, batch, c_out, &geo, &mut ws);
            let mut dx = vec![0.0; batch * img_len];
            be.conv2d_backward_input(&wts, &g, &mut dx, batch, c_out, &geo, &mut ws);
            (out, dw, dx)
        };
        let want = run(&Scalar);
        for threads in [1, 2] {
            let got = run(&Parallel::with_threads(threads));
            assert_within(&got.0, &want.0, "forward").unwrap();
            assert_within(&got.1, &want.1, "dW").unwrap();
            assert_within(&got.2, &want.2, "dX").unwrap();
        }
        // Degenerate spans must not perturb thread determinism.
        assert_eq!(
            run(&Parallel::with_threads(1)),
            run(&Parallel::with_threads(4)),
            "thread invariance at h={h} w={w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edge-span sweep over kernel size and padding: every (k, pad,
    /// stride, h, w) combination that yields at least one output column
    /// — including w < k and single-column outputs — must agree with
    /// the Scalar reference on all three kernels without panicking.
    #[test]
    fn conv2d_edge_span_sweep(
        k in 1usize..6,
        pad in 0usize..3,
        stride in 1usize..3,
        h in 1usize..8,
        w in 1usize..8,
        seed in 0u64..1000,
    ) {
        let geo = Conv2dGeometry { c_in: 1, h, w, k, stride, pad };
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        prop_assume!(pad < k);
        let (batch, c_out) = (1usize, 2usize);
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        let img_len = geo.c_in * geo.h * geo.w;
        let mut rng = fp_tensor::seeded_rng(seed ^ 0xF3);
        let x = rand_vec(batch * img_len, &mut rng);
        let wt = rand_vec(c_out * rows, &mut rng);
        let g = rand_vec(batch * c_out * n_cols, &mut rng);
        let run = |be: &dyn Backend| {
            let mut ws = Vec::new();
            let mut out = vec![0.0; batch * c_out * n_cols];
            be.conv2d_forward(&x, &wt, None, &mut out, batch, c_out, &geo, &mut ws);
            let mut dw = vec![0.0; c_out * rows];
            be.conv2d_backward_weights(&x, &g, &mut dw, batch, c_out, &geo, &mut ws);
            let mut dx = vec![0.0; batch * img_len];
            be.conv2d_backward_input(&wt, &g, &mut dx, batch, c_out, &geo, &mut ws);
            (out, dw, dx)
        };
        let want = run(&Scalar);
        let got = run(&Parallel::with_threads(2));
        assert_within(&got.0, &want.0, "forward")?;
        assert_within(&got.1, &want.1, "dW")?;
        assert_within(&got.2, &want.2, "dX")?;
    }

    /// Fused conv forward ≡ materialized Scalar reference at 1e-5 for
    /// random geometry (stride 1–2, pad 0–1, skinny channel counts).
    #[test]
    fn conv2d_forward_scalar_vs_parallel(
        c_in in 1usize..5,
        h in 3usize..10,
        w in 3usize..10,
        stride in 1usize..3,
        pad in 0usize..2,
        batch in 1usize..4,
        c_out in 1usize..6,
        seed in 0u64..1000,
    ) {
        let geo = Conv2dGeometry { c_in, h, w, k: 3, stride, pad };
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        let img_len = c_in * h * w;
        let mut rng = fp_tensor::seeded_rng(seed ^ 0xF0);
        let x = rand_vec(batch * img_len, &mut rng);
        let wt = rand_vec(c_out * rows, &mut rng);
        let bias = rand_vec(c_out, &mut rng);
        let mut ws_s = Vec::new();
        let mut ws_p = Vec::new();
        let mut want = vec![0.0; batch * c_out * n_cols];
        Scalar.conv2d_forward(&x, &wt, Some(&bias), &mut want, batch, c_out, &geo, &mut ws_s);
        let mut got = vec![0.0; batch * c_out * n_cols];
        Parallel::with_threads(2)
            .conv2d_forward(&x, &wt, Some(&bias), &mut got, batch, c_out, &geo, &mut ws_p);
        assert_within(&got, &want, "conv2d_forward")?;
    }

    /// Both fused conv backward kernels ≡ the Scalar reference at 1e-5,
    /// including gradient accumulation into non-zero buffers (`dw`).
    #[test]
    fn conv2d_backward_scalar_vs_parallel(
        c_in in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        stride in 1usize..3,
        pad in 0usize..2,
        batch in 1usize..4,
        c_out in 1usize..6,
        seed in 0u64..1000,
    ) {
        let geo = Conv2dGeometry { c_in, h, w, k: 3, stride, pad };
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        let img_len = c_in * h * w;
        let mut rng = fp_tensor::seeded_rng(seed ^ 0xF1);
        let x = rand_vec(batch * img_len, &mut rng);
        let wt = rand_vec(c_out * rows, &mut rng);
        let g = rand_vec(batch * c_out * n_cols, &mut rng);
        let dw0 = rand_vec(c_out * rows, &mut rng);
        let mut ws_s = Vec::new();
        let mut ws_p = Vec::new();

        let mut want_dw = dw0.clone();
        Scalar.conv2d_backward_weights(&x, &g, &mut want_dw, batch, c_out, &geo, &mut ws_s);
        let mut got_dw = dw0;
        Parallel::with_threads(2)
            .conv2d_backward_weights(&x, &g, &mut got_dw, batch, c_out, &geo, &mut ws_p);
        assert_within(&got_dw, &want_dw, "conv2d_backward_weights")?;

        let mut want_dx = vec![0.0; batch * img_len];
        Scalar.conv2d_backward_input(&wt, &g, &mut want_dx, batch, c_out, &geo, &mut ws_s);
        let mut got_dx = vec![0.0; batch * img_len];
        Parallel::with_threads(2)
            .conv2d_backward_input(&wt, &g, &mut got_dx, batch, c_out, &geo, &mut ws_p);
        assert_within(&got_dx, &want_dx, "conv2d_backward_input")?;
    }

    /// Grouped GEMM ≡ Scalar reference at 1e-5 for random group sizes
    /// and skinny/degenerate member shapes (m, k, or n of 1).
    #[test]
    fn grouped_gemm_scalar_vs_parallel(
        m in 1usize..24,
        k in 1usize..32,
        n in 1usize..24,
        groups in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = fp_tensor::seeded_rng(seed ^ 0xF2);
        let a = rand_vec(m * k, &mut rng);
        let b_all: Vec<Vec<f32>> = (0..groups).map(|_| rand_vec(k * n, &mut rng)).collect();
        let init: Vec<Vec<f32>> = (0..groups).map(|_| rand_vec(m * n, &mut rng)).collect();
        let run = |be: &dyn Backend| {
            let mut outs = init.clone();
            let bs: Vec<&[f32]> = b_all.iter().map(|b| b.as_slice()).collect();
            let mut out_refs: Vec<&mut [f32]> =
                outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            be.matmul_grouped_into(&a, &bs, &mut out_refs, m, k, n);
            outs
        };
        let want = run(&Scalar);
        let got = run(&Parallel::with_threads(2));
        for (g, w) in got.iter().zip(&want) {
            assert_within(g, w, "grouped")?;
        }
    }
}
