use fp_tensor::{Backend, Conv2dGeometry, Parallel, Scalar};

#[test]
fn conv_pad2_narrow_span() {
    // k=5 pad=2 stride=1 on a 31-wide image: a packed B span ends one
    // column into an output row, so run=1 while -ix0=2 (left padding).
    for (h, w) in [(5usize, 31usize), (5, 5), (3, 1)] {
        let geo = Conv2dGeometry {
            c_in: 1,
            h,
            w,
            k: 5,
            stride: 1,
            pad: 2,
        };
        let (batch, c_out) = (1usize, 1usize);
        let rows = geo.col_rows();
        let n_cols = geo.col_cols();
        let img_len = geo.c_in * geo.h * geo.w;
        let x: Vec<f32> = (0..batch * img_len).map(|i| i as f32 * 0.01).collect();
        let wts: Vec<f32> = (0..c_out * rows).map(|i| i as f32 * 0.001).collect();
        let mut out_p = vec![0.0f32; batch * c_out * n_cols];
        let mut out_s = vec![0.0f32; batch * c_out * n_cols];
        let mut ws = Vec::new();
        Parallel::default().conv2d_forward(&x, &wts, None, &mut out_p, batch, c_out, &geo, &mut ws);
        let mut ws2 = Vec::new();
        Scalar.conv2d_forward(&x, &wts, None, &mut out_s, batch, c_out, &geo, &mut ws2);
        for (a, b) in out_p.iter().zip(out_s.iter()) {
            assert!((a - b).abs() < 1e-4, "mismatch {a} vs {b} at h={h} w={w}");
        }
    }
}
