//! Adaptive Perturbation Adjustment (paper §6.2).

use serde::Serialize;

/// The APA controller for one module's input perturbation budget.
///
/// The intermediate perturbation constraint is
/// `ε_{m−1}^(t) = α_{m−1}^(t) · E[max‖Δz_{m−1}‖]` (Eq. 11), where the
/// expectation is the client-averaged largest feature perturbation
/// collected when module `m−1` was fixed. The scaling factor `α` walks by
/// `±Δα` to keep the current module's clean/adversarial validation
/// accuracy ratio within `(1 ± γ)` of the previous module's final ratio
/// (Eq. 12): too-clean ⇒ strengthen the attack, too-robust ⇒ weaken it.
#[derive(Debug, Clone, Serialize)]
pub struct Apa {
    alpha: f32,
    delta_alpha: f32,
    gamma: f32,
    /// `C*_{m−1} / A*_{m−1}` — the previous module's final accuracy ratio.
    prev_ratio: Option<f32>,
    /// `E[max‖Δz_{m−1}‖]` — the reference perturbation magnitude.
    avg_delta_z: f32,
    /// Trace of the produced ε values (Figure 10).
    trace: Vec<f32>,
}

impl Apa {
    /// Creates a controller with the paper's defaults
    /// (`α₀ = 0.3`, `Δα = 0.1`, `γ = 0.05`; §6.2/§7.3).
    pub fn new(alpha0: f32, delta_alpha: f32, gamma: f32, avg_delta_z: f32) -> Self {
        assert!(alpha0 > 0.0, "alpha0 must be positive");
        assert!(delta_alpha > 0.0, "delta_alpha must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(avg_delta_z >= 0.0, "perturbation reference must be >= 0");
        Apa {
            alpha: alpha0,
            delta_alpha,
            gamma,
            prev_ratio: None,
            avg_delta_z,
            trace: Vec::new(),
        }
    }

    /// The paper-default controller.
    pub fn paper_defaults(avg_delta_z: f32) -> Self {
        Apa::new(0.3, 0.1, 0.05, avg_delta_z)
    }

    /// Sets the previous module's final clean/adversarial accuracy ratio
    /// `C*/A*` (call when module `m−1` is fixed).
    pub fn set_reference_ratio(&mut self, clean: f32, adv: f32) {
        self.prev_ratio = Some(ratio(clean, adv));
    }

    /// Current scaling factor `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Produces this round's `ε_{m−1}` and records it in the trace.
    pub fn epsilon(&mut self) -> f32 {
        let eps = self.alpha * self.avg_delta_z;
        self.trace.push(eps);
        eps
    }

    /// Adjusts `α` from this round's validation accuracies (Eq. 12).
    ///
    /// No-op until [`Apa::set_reference_ratio`] has been called.
    pub fn adjust(&mut self, val_clean: f32, val_adv: f32) {
        let Some(prev) = self.prev_ratio else {
            return;
        };
        let cur = ratio(val_clean, val_adv);
        if cur > (1.0 + self.gamma) * prev {
            // Too clean, too weak: strengthen the perturbation.
            self.alpha += self.delta_alpha;
        } else if cur < (1.0 - self.gamma) * prev {
            self.alpha = (self.alpha - self.delta_alpha).max(self.delta_alpha * 0.1);
        }
    }

    /// The ε trace so far (Figure 10's series).
    pub fn trace(&self) -> &[f32] {
        &self.trace
    }
}

fn ratio(clean: f32, adv: f32) -> f32 {
    clean / adv.max(1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_scales_reference_magnitude() {
        let mut apa = Apa::paper_defaults(2.0);
        assert!((apa.epsilon() - 0.6).abs() < 1e-6, "0.3 · 2.0");
    }

    #[test]
    fn alpha_increases_when_too_clean() {
        let mut apa = Apa::paper_defaults(1.0);
        apa.set_reference_ratio(0.8, 0.6); // prev ratio ≈ 1.33
                                           // Current ratio 2.0 > 1.05·1.33 → strengthen.
        apa.adjust(0.8, 0.4);
        assert!((apa.alpha() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn alpha_decreases_when_too_robust() {
        let mut apa = Apa::paper_defaults(1.0);
        apa.set_reference_ratio(0.8, 0.4); // prev ratio = 2.0
                                           // Current ratio 1.0 < 0.95·2.0 → weaken.
        apa.adjust(0.7, 0.7);
        assert!((apa.alpha() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn alpha_holds_within_band() {
        let mut apa = Apa::paper_defaults(1.0);
        apa.set_reference_ratio(0.8, 0.4);
        apa.adjust(0.82, 0.42); // ratio ≈ 1.95, inside (1±0.05)·2.0
        assert!((apa.alpha() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn no_adjustment_without_reference() {
        let mut apa = Apa::paper_defaults(1.0);
        apa.adjust(0.9, 0.1);
        assert!((apa.alpha() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn alpha_never_reaches_zero() {
        let mut apa = Apa::paper_defaults(1.0);
        apa.set_reference_ratio(1.0, 1.0);
        for _ in 0..100 {
            apa.adjust(0.5, 1.0); // ratio 0.5 << 1 → keep weakening
        }
        assert!(apa.alpha() > 0.0);
    }

    #[test]
    fn trace_records_every_round() {
        let mut apa = Apa::paper_defaults(1.5);
        for _ in 0..5 {
            apa.epsilon();
        }
        assert_eq!(apa.trace().len(), 5);
    }
}
