//! **FedProphet**: memory-efficient federated adversarial training via
//! robust and consistent cascade learning (Tang et al., MLSys 2025).
//!
//! The framework has a client side and a server side (paper Figure 3):
//!
//! *Client side* — [`trainer`]: **adversarial cascade learning with strong
//! convexity regularization** (§5.1, Eq. 9). A large backbone is trained
//! module-by-module; each module is attacked at its *input feature*
//! `z_{m−1}` (PGD in an ℓ2 ball of radius `ε_{m−1}`, ℓ∞ at the image
//! input) and optimized on the early-exit loss of a linear auxiliary head
//! ([`AuxHead`]) plus the `µ/2·‖z_m‖²` regularizer that makes the loss
//! strongly convex in `z_m` — the sufficient condition for backbone
//! robustness (Proposition 1 + Lemma 1) that simultaneously bounds the
//! objective inconsistency (Lemma 2).
//!
//! *Server side*:
//!
//! * [`partition`] — the memory-constrained greedy model partitioner
//!   (Algorithm 1): groups atoms into the fewest modules whose training
//!   memory (including the auxiliary head) fits the minimum reserved
//!   memory `R_min`;
//! * [`apa`] — **Adaptive Perturbation Adjustment** (§6.2, Eq. 11–12):
//!   scales `ε_{m−1} = α·E[max‖Δz_{m−1}‖]` and walks `α` to keep the
//!   clean/adversarial accuracy ratio near the previous module's;
//! * [`dma`] — **Differentiated Module Assignment** (§6.3, Eq. 14–15):
//!   "prophet" clients with spare memory and FLOPs train extra future
//!   modules jointly, under a hard synchronization-time constraint;
//! * [`algorithm`] — the full federated loop (Algorithm 2) with
//!   partial-average aggregation of modules (Eq. 16) and auxiliary heads
//!   (Eq. 17), per-module convergence with early stopping, and per-round
//!   latency accounting against the `fp-hwsim` device fleet.
//!
//! # Example
//!
//! ```no_run
//! use fedprophet::{FedProphet, ProphetConfig};
//! use fp_fl::FlAlgorithm;
//! # fn env() -> fp_fl::FlEnv { unimplemented!() }
//!
//! let env = env(); // data splits + device fleet + hyperparameters
//! let outcome = FedProphet::new(ProphetConfig::default()).run(&env);
//! println!("adv acc: {:?}", outcome.final_val_adv());
//! ```

pub mod algorithm;
pub mod apa;
mod aux_head;
pub mod dma;
mod module_target;
pub mod partition;
pub mod trainer;

pub use algorithm::{FedProphet, ProphetConfig, ProphetOutcome, ProphetRound};
pub use apa::Apa;
pub use aux_head::AuxHead;
pub use dma::{assign_modules, ModuleAssignment};
pub use module_target::{FinalWindowTarget, ModuleTarget};
pub use partition::{partition_model, ModulePartition};
pub use trainer::{max_feature_perturbation, train_module_window, WindowTrainConfig};
