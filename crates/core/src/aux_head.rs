//! The auxiliary early-exit model.

use fp_nn::{GlobalAvgPool, Layer, Linear, Mode, Param};
use fp_tensor::Tensor;
use rand::Rng;

/// The auxiliary output model `θ_m` of a cascade module: global average
/// pooling (for feature-map inputs) followed by **one linear layer**
/// (paper §5.1 design (1): a linear head keeps the early-exit loss convex
/// in `z_m`; the added `µ/2‖z_m‖²` regularizer makes it strongly convex —
/// Lemma 1's premise).
///
/// Feature inputs may be `[b, c, h, w]` (pooled) or already flat `[b, d]`
/// (pooling skipped), so heads attach uniformly to conv and FC modules.
pub struct AuxHead {
    pool: GlobalAvgPool,
    linear: Linear,
    pooled: bool,
}

impl AuxHead {
    /// Creates a head for module outputs of per-sample shape `feature`
    /// (`[c, h, w]` or `[d]`).
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        feature: &[usize],
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        let channels = feature[0];
        AuxHead {
            pool: GlobalAvgPool::new(0),
            linear: Linear::new(
                name,
                channels,
                n_classes,
                1,
                0,
                fp_nn::spec::GROUP_OUTPUT,
                rng,
            ),
            pooled: feature.len() > 1,
        }
    }

    /// Logits for a batch of module outputs.
    pub fn forward(&mut self, z: &Tensor, mode: Mode) -> Tensor {
        if self.pooled {
            let p = self.pool.forward(z, mode);
            self.linear.forward(&p, mode)
        } else {
            self.linear.forward(z, mode)
        }
    }

    /// Back-propagates a logits gradient, accumulating head parameter
    /// gradients; returns the gradient with respect to the module output.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.linear.backward(grad_logits);
        if self.pooled {
            self.pool.backward(&g)
        } else {
            g
        }
    }

    /// Trainable parameters (the linear layer's weight and bias).
    pub fn params(&self) -> Vec<&Param> {
        self.linear.params()
    }

    /// Trainable parameters, mutable.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.linear.params_mut()
    }

    /// Points the head's linear layer at a compute backend.
    pub fn set_backend(&mut self, backend: &fp_tensor::BackendHandle) {
        self.linear.set_backend(backend);
    }

    /// Zeroes gradients.
    pub fn zero_grad(&mut self) {
        for p in self.linear.params_mut() {
            p.zero_grad();
        }
    }

    /// Flat parameter vector (aggregation transport).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for p in self.linear.params() {
            out.extend_from_slice(p.value().data());
        }
        out
    }

    /// Writes a flat vector produced by [`AuxHead::flat_params`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        for p in self.linear.params_mut() {
            let n = p.numel();
            p.value_mut()
                .data_mut()
                .copy_from_slice(&flat[off..off + n]);
            off += n;
        }
        assert_eq!(off, flat.len(), "aux flat vector length mismatch");
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.linear.params().iter().map(|p| p.numel()).sum()
    }
}

impl Clone for AuxHead {
    fn clone(&self) -> Self {
        AuxHead {
            pool: self.pool.clone(),
            linear: self.linear.clone(),
            pooled: self.pooled,
        }
    }
}

impl std::fmt::Debug for AuxHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuxHead")
            .field("pooled", &self.pooled)
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_head_shapes() {
        let mut rng = fp_tensor::seeded_rng(0);
        let mut head = AuxHead::new("aux", &[8, 4, 4], 5, &mut rng);
        let z = Tensor::rand_uniform(&[2, 8, 4, 4], -1.0, 1.0, &mut rng);
        let logits = head.forward(&z, Mode::Eval);
        assert_eq!(logits.shape(), &[2, 5]);
        let dz = head.backward(&Tensor::ones(&[2, 5]));
        assert_eq!(dz.shape(), z.shape());
    }

    #[test]
    fn flat_head_skips_pooling() {
        let mut rng = fp_tensor::seeded_rng(1);
        let mut head = AuxHead::new("aux", &[16], 3, &mut rng);
        let z = Tensor::rand_uniform(&[4, 16], -1.0, 1.0, &mut rng);
        assert_eq!(head.forward(&z, Mode::Eval).shape(), &[4, 3]);
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = fp_tensor::seeded_rng(2);
        let head = AuxHead::new("aux", &[8, 2, 2], 4, &mut rng);
        let flat = head.flat_params();
        assert_eq!(flat.len(), head.param_count());
        let mut other = AuxHead::new("aux", &[8, 2, 2], 4, &mut rng);
        other.set_flat_params(&flat);
        assert_eq!(other.flat_params(), flat);
    }

    #[test]
    fn head_param_count_matches_spec() {
        let mut rng = fp_tensor::seeded_rng(3);
        let head = AuxHead::new("aux", &[32, 4, 4], 10, &mut rng);
        let spec = fp_hwsim::AuxHeadSpec::for_feature(&[32, 4, 4], 10);
        assert_eq!(head.param_count(), spec.param_count());
    }
}
