//! Memory-constrained model partitioning (Algorithm 1).

use fp_hwsim::{module_mem_req, AuxHeadSpec};
use fp_nn::spec::{cascade_output_shape, AtomSpec};
use serde::Serialize;

/// A partition of the backbone into cascaded modules.
#[derive(Debug, Clone, Serialize)]
pub struct ModulePartition {
    /// Atom windows `[from, to)`, in cascade order, covering every atom
    /// exactly once.
    pub windows: Vec<(usize, usize)>,
    /// Training-memory requirement of each module (bytes), including its
    /// auxiliary head.
    pub mem_bytes: Vec<u64>,
    /// Per-sample forward MACs of each module (including its head).
    pub fwd_macs: Vec<u64>,
    /// Whether any single atom alone exceeded `R_min` (the partition is
    /// then best-effort: such an atom forms its own oversized module).
    pub oversized: bool,
}

impl ModulePartition {
    /// Number of modules `M`.
    pub fn num_modules(&self) -> usize {
        self.windows.len()
    }

    /// The largest module memory (what a constrained client must hold).
    pub fn max_module_mem(&self) -> u64 {
        self.mem_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Index of the module containing atom `a`.
    pub fn module_of_atom(&self, a: usize) -> usize {
        self.windows
            .iter()
            .position(|&(f, t)| a >= f && a < t)
            .expect("atom outside partition")
    }
}

/// Greedily partitions the atom cascade into the fewest modules whose
/// training memory (batch activations + model states + auxiliary head)
/// stays within `r_min` bytes (paper Algorithm 1).
///
/// Every module's memory is estimated with *its own* input feature shape
/// (propagated through the cascade) and the GAP→linear auxiliary head for
/// `n_classes`. The final module uses the backbone's own classifier, so no
/// head is added for it.
///
/// # Panics
///
/// Panics if `specs` is empty or `batch` is zero.
pub fn partition_model(
    specs: &[AtomSpec],
    input_shape: &[usize],
    batch: usize,
    n_classes: usize,
    r_min: u64,
) -> ModulePartition {
    assert!(!specs.is_empty(), "cannot partition an empty model");
    assert!(batch > 0, "batch must be positive");
    let n = specs.len();
    let mut windows = Vec::new();
    let mut oversized = false;
    let mut start = 0usize;
    // Input shape at the start of the current window.
    let mut window_input = input_shape.to_vec();
    let mut cursor_shape = input_shape.to_vec();

    let mem_of = |from: usize, to: usize, in_shape: &[usize]| -> u64 {
        let out_shape = cascade_output_shape(&specs[from..to], in_shape);
        let aux = if to == n {
            None // final module ends in the backbone classifier
        } else {
            Some(AuxHeadSpec::for_feature(&out_shape, n_classes))
        };
        module_mem_req(&specs[from..to], in_shape, batch, aux).total()
    };

    #[allow(clippy::needless_range_loop)] // index shared across several buffers
    for i in 0..n {
        let candidate = mem_of(start, i + 1, &window_input);
        if candidate > r_min && i > start {
            // Close the window before atom i.
            windows.push((start, i));
            start = i;
            window_input = cursor_shape.clone();
            if mem_of(start, i + 1, &window_input) > r_min {
                oversized = true;
            }
        } else if candidate > r_min {
            // Single atom exceeding the budget: keep it alone.
            oversized = true;
        }
        cursor_shape = specs[i].output_shape(&cursor_shape);
    }
    windows.push((start, n));

    // Cost every module.
    let mut mem_bytes = Vec::with_capacity(windows.len());
    let mut fwd_macs = Vec::with_capacity(windows.len());
    let mut shape = input_shape.to_vec();
    for &(f, t) in &windows {
        mem_bytes.push(mem_of(f, t, &shape));
        let out_shape = cascade_output_shape(&specs[f..t], &shape);
        let mut macs = fp_hwsim::forward_macs(&specs[f..t], &shape);
        if t != n {
            macs += AuxHeadSpec::for_feature(&out_shape, n_classes).macs();
        }
        fwd_macs.push(macs);
        shape = out_shape;
    }
    ModulePartition {
        windows,
        mem_bytes,
        fwd_macs,
        oversized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_nn::models::{resnet34_spec_caltech, vgg16_spec_cifar, vgg_atom_specs, VggConfig};

    const MB: u64 = 1024 * 1024;

    #[test]
    fn windows_cover_all_atoms_in_order() {
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 16, 4, &[8, 16, 32]));
        let p = partition_model(&specs, &[3, 16, 16], 8, 4, 600_000);
        let mut next = 0;
        for &(f, t) in &p.windows {
            assert_eq!(f, next, "gap or overlap");
            assert!(t > f);
            next = t;
        }
        assert_eq!(next, specs.len());
    }

    #[test]
    fn unbounded_budget_gives_one_module() {
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[4, 8]));
        let p = partition_model(&specs, &[3, 8, 8], 8, 4, u64::MAX);
        assert_eq!(p.num_modules(), 1);
        assert!(!p.oversized);
    }

    #[test]
    fn tiny_budget_gives_one_module_per_atom() {
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[4, 8]));
        let p = partition_model(&specs, &[3, 8, 8], 8, 4, 1);
        assert_eq!(p.num_modules(), specs.len());
        assert!(p.oversized);
    }

    #[test]
    fn vgg16_with_20pct_budget_gives_about_7_modules() {
        // Paper §7.2: R_min ≈ 20 % of the full requirement partitions
        // VGG16 into 7 modules.
        let specs = vgg16_spec_cifar();
        let full = fp_hwsim::model_mem_req(&specs, &[3, 32, 32], 64).total();
        let p = partition_model(&specs, &[3, 32, 32], 64, 10, full / 5);
        assert!(
            (6..=8).contains(&p.num_modules()),
            "vgg16 modules {} (windows {:?})",
            p.num_modules(),
            p.windows
        );
        assert!(!p.oversized);
        // Memory reduction: the largest module must be ≤ ~25 % of full.
        let reduction = 1.0 - p.max_module_mem() as f64 / full as f64;
        assert!(reduction > 0.7, "memory reduction {reduction}");
    }

    #[test]
    fn resnet34_with_paper_rmin_gives_about_7_modules() {
        // Paper Table 8: R_min = 224 MB partitions ResNet34 into 7
        // modules; our estimator's boundaries may shift by ±1 module.
        let specs = resnet34_spec_caltech();
        let p = partition_model(&specs, &[3, 224, 224], 32, 256, 236 * MB);
        assert!(
            (6..=9).contains(&p.num_modules()),
            "resnet34 modules {} (windows {:?})",
            p.num_modules(),
            p.windows
        );
        // Stem alone may exceed: tolerated as its own module.
        for (i, &(f, t)) in p.windows.iter().enumerate() {
            if !(f == 0 && t == 1) {
                assert!(
                    p.mem_bytes[i] <= 237 * MB,
                    "module {i} = {:?} uses {} MB",
                    (f, t),
                    p.mem_bytes[i] / MB
                );
            }
        }
    }

    #[test]
    fn module_of_atom_inverts_windows() {
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 16, 4, &[8, 16, 32]));
        let p = partition_model(&specs, &[3, 16, 16], 8, 4, 600_000);
        for (m, &(f, t)) in p.windows.iter().enumerate() {
            for a in f..t {
                assert_eq!(p.module_of_atom(a), m);
            }
        }
    }
}
