//! The full FedProphet federated loop (paper Algorithm 2).

use crate::apa::Apa;
use crate::aux_head::AuxHead;
use crate::dma::{assign_modules, ModuleAssignment};
use crate::module_target::ModuleTarget;
use crate::partition::{partition_model, ModulePartition};
use crate::trainer::{max_feature_perturbation, train_module_window, WindowTrainConfig};
use fp_attack::{AttackTarget, ModelTarget, Pgd, PgdConfig};
use fp_fl::async_sched::{staleness_weight, AsyncConfig, AsyncTimeline};
use fp_fl::sched::{draw_dropouts, over_select_count, simulate_round, SchedConfig, SALT_AVAIL};
use fp_fl::{FlAlgorithm, FlEnv, FlOutcome, RoundRecord};
use fp_hwsim::{param_transfer_bytes, ClientLatency, LatencyModel, Payload, TrainingPassProfile};
use fp_nn::CascadeModel;
use fp_tensor::{argmax_rows, seeded_rng, Tensor};
use rand::Rng;
use serde::Serialize;

/// FedProphet hyperparameters (paper §6 and §B.4).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProphetConfig {
    /// Strong convexity coefficient µ (paper default 1e-5 at full scale;
    /// tiny-scale features are smaller, so the default here is 1e-4 —
    /// Figure 8 sweeps this).
    pub mu: f32,
    /// Initial perturbation scaling factor α₀ (§7.3: 0.3).
    pub alpha0: f32,
    /// APA step Δα (§6.2: 0.1).
    pub delta_alpha: f32,
    /// APA tolerance γ (§6.2: 0.05).
    pub gamma: f32,
    /// Max communication rounds per module; `None` divides the
    /// environment's total `rounds` evenly across modules.
    pub rounds_per_module: Option<usize>,
    /// Early-stop patience in rounds (paper: 50; `usize::MAX` disables).
    pub patience: usize,
    /// Adaptive Perturbation Adjustment on/off (Table 3 ablation).
    pub use_apa: bool,
    /// Differentiated Module Assignment on/off (Table 3 ablation).
    pub use_dma: bool,
    /// Local batches probed for `max‖Δz_m‖` when a module is fixed.
    pub probe_batches: usize,
    /// Validation subset size for APA's accuracy ratios.
    pub val_samples: usize,
    /// Overrides the environment-derived `R_min` (bytes) for the model
    /// partitioner — the knob behind the paper's Figure 9 sweep.
    pub r_min_override: Option<u64>,
    /// Round-scheduling policy (over-selection, dropout, straggler
    /// deadlines). The default wait-all barrier reproduces the historical
    /// lockstep loop; a deadline makes DMA's module assignment interact
    /// with simulated device speed — clients the DMA loads with extra
    /// modules take longer and can be cut as stragglers.
    pub sched: SchedConfig,
    /// Barrier-free asynchronous aggregation of the module window. When
    /// set, each module phase runs on a continuous virtual clock
    /// (`fp_fl::async_sched`): window updates stream into a staleness
    /// buffer, every `buffer_k` of them are partial-averaged (Eq. 16/17)
    /// with FedAvg weights discounted by `1/(1+staleness)^a`, and freed
    /// client slots re-arm immediately. `sched` is ignored in this mode;
    /// module boundaries stay synchronization points (module `m` must be
    /// fixed before `m+1` starts — clients still in flight at a boundary
    /// are discarded).
    pub async_agg: Option<AsyncConfig>,
}

impl Default for ProphetConfig {
    fn default() -> Self {
        ProphetConfig {
            mu: 1e-4,
            alpha0: 0.3,
            delta_alpha: 0.1,
            gamma: 0.05,
            rounds_per_module: None,
            patience: usize::MAX,
            use_apa: true,
            use_dma: true,
            probe_batches: 2,
            val_samples: 64,
            r_min_override: None,
            sched: SchedConfig::default(),
            async_agg: None,
        }
    }
}

/// One FedProphet communication round's record.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProphetRound {
    /// Global round index.
    pub round: usize,
    /// Module being learned.
    pub module: usize,
    /// Perturbation budget ε used this round (input ℓ∞ for module 1,
    /// feature ℓ2 otherwise).
    pub epsilon: f32,
    /// Mean local training loss.
    pub train_loss: f32,
    /// Validation clean accuracy of the cascaded prefix.
    pub val_clean: f32,
    /// Validation adversarial accuracy of the cascaded prefix.
    pub val_adv: f32,
    /// Simulated synchronization latency of the round (slowest client
    /// whose update was aggregated).
    pub latency_compute_s: f64,
    /// Simulated data-access (swap) latency of the round.
    pub latency_data_s: f64,
    /// Simulated up/down-link window-transfer latency of that same
    /// slowest aggregated client.
    pub latency_transfer_s: f64,
    /// Mean number of modules assigned per aggregated client (DMA
    /// effect).
    pub mean_assigned: f32,
    /// Mean staleness (model versions) of the aggregated updates — always
    /// 0 under synchronous rounds.
    pub mean_staleness: f32,
    /// Virtual duration of the round under the scheduling policy
    /// (deadline-clipped; equals the slowest-client latency under the
    /// default wait-all barrier).
    pub round_time_s: f64,
    /// Clients whose updates were aggregated.
    pub completed: usize,
    /// Surviving clients cut by the straggler deadline.
    pub stragglers: usize,
    /// Selected clients that dropped out and never reported.
    pub dropped_out: usize,
}

/// The result of a FedProphet run: final model, partition, per-round
/// records, and the ε traces (Figure 10).
pub struct ProphetOutcome {
    /// Trained backbone.
    pub model: CascadeModel,
    /// The module partition used.
    pub partition: ModulePartition,
    /// Per-round records.
    pub rounds: Vec<ProphetRound>,
    /// Per-module ε traces.
    pub eps_traces: Vec<Vec<f32>>,
    /// The probed `E[max‖Δz_m‖₂]` reference per module boundary (entry `m`
    /// is the reference used for module `m+1`'s perturbation; Figure 8's
    /// `d*₁` is entry 0).
    pub delta_z_refs: Vec<f32>,
}

impl ProphetOutcome {
    /// Total simulated training time (sum of round sync latencies).
    pub fn total_latency(&self) -> ClientLatency {
        self.rounds.iter().fold(ClientLatency::zero(), |acc, r| {
            acc.add(&ClientLatency {
                compute_s: r.latency_compute_s,
                data_access_s: r.latency_data_s,
                transfer_s: r.latency_transfer_s,
            })
        })
    }

    /// Total virtual wall-clock under the scheduling policy (sum of
    /// deadline-clipped round durations; equals
    /// `total_latency().total()` under the default wait-all barrier).
    pub fn total_round_time(&self) -> f64 {
        self.rounds.iter().map(|r| r.round_time_s).sum()
    }

    /// Converts to the generic `fp-fl` outcome shape.
    pub fn into_fl_outcome(self) -> FlOutcome {
        let history = self
            .rounds
            .iter()
            .map(|r| RoundRecord {
                round: r.round,
                train_loss: r.train_loss,
                val_clean: Some(r.val_clean),
                val_adv: Some(r.val_adv),
            })
            .collect();
        FlOutcome {
            model: self.model,
            history,
        }
    }
}

/// The FedProphet algorithm (client trainer + server coordinator).
#[derive(Debug, Clone, Copy)]
pub struct FedProphet {
    /// Hyperparameters.
    pub config: ProphetConfig,
}

impl FedProphet {
    /// Creates the algorithm.
    pub fn new(config: ProphetConfig) -> Self {
        FedProphet { config }
    }

    /// Runs Algorithm 2, returning the detailed outcome.
    pub fn run_detailed(&self, env: &FlEnv) -> ProphetOutcome {
        let cfg = &env.cfg;
        let pcfg = &self.config;
        let n_classes = env.data.train.n_classes();
        let partition = partition_model(
            &env.reference_specs,
            &env.input_shape,
            cfg.batch_size,
            n_classes,
            pcfg.r_min_override.unwrap_or_else(|| env.r_min()),
        );
        let n_modules = partition.num_modules();
        let rounds_per_module = pcfg
            .rounds_per_module
            .unwrap_or((cfg.rounds / n_modules).max(1));

        let mut rng = seeded_rng(cfg.seed ^ 0x9120_9127);
        let mut global =
            fp_nn::models::instantiate(&env.reference_specs, &env.input_shape, n_classes, &mut rng);
        // One auxiliary head per non-final module.
        let mut heads: Vec<Option<AuxHead>> = (0..n_modules)
            .map(|m| {
                (m + 1 < n_modules).then(|| {
                    let (_, t) = partition.windows[m];
                    AuxHead::new(
                        &format!("aux{m}"),
                        &global.feature_shape(t),
                        n_classes,
                        &mut rng,
                    )
                })
            })
            .collect();

        let mut records = Vec::new();
        let mut eps_traces: Vec<Vec<f32>> = vec![Vec::new(); n_modules];
        let mut delta_z_refs: Vec<f32> = Vec::new();
        let mut global_round = 0usize;
        // ε reference for the *current* module's input: ε₀ for module 1.
        let mut eps_ref = cfg.eps0;
        let mut prev_ratio: Option<(f32, f32)> = None;

        #[allow(clippy::needless_range_loop)] // index shared across several buffers
        for m in 0..n_modules {
            let mut apa = if m == 0 {
                None
            } else {
                let mut a = Apa::new(pcfg.alpha0, pcfg.delta_alpha, pcfg.gamma, eps_ref);
                if let Some((c, adv)) = prev_ratio {
                    a.set_reference_ratio(c, adv);
                }
                Some(a)
            };
            let mut best_score = f32::NEG_INFINITY;
            let mut since_best = 0usize;
            let mut last_eps = cfg.eps0;

            if let Some(acfg) = pcfg.async_agg {
                // ---------------- barrier-free async module phase ----------------
                acfg.validate();
                assert!(
                    acfg.buffer_k <= cfg.n_clients,
                    "buffer_k above n_clients deadlocks the module phase"
                );
                // DMA's FLOPs reference: with no barrier to stretch,
                // extra modules are bounded against the slowest possible
                // participant (fleet-minimum peak at the §B.1 degradation
                // floor) instead of a round cohort's minimum.
                let perf_floor = env
                    .fleet
                    .iter()
                    .map(|d| d.device.tflops)
                    .fold(f64::INFINITY, f64::min)
                    * 0.2;
                let phase_seed = cfg.seed ^ 0x00A5_F1ED ^ ((m as u64 + 1) << 40);
                let mut timeline = AsyncTimeline::new(phase_seed, cfg.n_clients, acfg.concurrency);
                struct PhasePending {
                    client: usize,
                    version: usize,
                    latency: ClientLatency,
                    assigned: usize,
                    result: ClientResult,
                }
                let mut in_flight: Vec<PhasePending> = Vec::new();
                let mut buffer: Vec<PhasePending> = Vec::new();
                let mut aggs = 0usize;
                let mut last_clock = 0.0f64;
                // ε of the current version, drawn lazily at its first
                // dispatch batch — exactly one `Apa::epsilon()` trace
                // entry per aggregation, matching the sync loop's
                // one-per-round discipline.
                let mut cur_eps: Option<f32> = None;
                while aggs < rounds_per_module {
                    // Arm freed slots: cost, schedule, and eagerly train
                    // each picked client on its DMA-assigned window
                    // against the current global state.
                    let picked = timeline.pick_dispatches();
                    if !picked.is_empty() {
                        let eps = *cur_eps.get_or_insert_with(|| match apa.as_mut() {
                            None => cfg.eps0,
                            Some(a) => a.epsilon(),
                        });
                        let lr = cfg.lr.at(global_round);
                        let mut assigns = Vec::with_capacity(picked.len());
                        let mut lats = Vec::with_capacity(picked.len());
                        for &k in &picked {
                            let (mem, perf) = prophet_availability(env, global_round, k);
                            let assign = if pcfg.use_dma {
                                assign_modules(&partition, m, mem, perf, perf_floor)
                            } else {
                                ModuleAssignment {
                                    current: m,
                                    last: m,
                                }
                            };
                            let (model, payload) =
                                window_latency_model(env, &partition, assign, cfg);
                            let lat = model.dispatch_round_trip(
                                &degraded_sample(env, k, mem, perf),
                                cfg.local_iters,
                                &payload,
                            );
                            timeline.schedule_finish(k, timeline.clock_s() + lat.total());
                            assigns.push(assign);
                            lats.push(lat);
                        }
                        let results = run_clients(
                            env,
                            &global,
                            &heads,
                            &partition,
                            &assigns,
                            &picked,
                            eps,
                            lr,
                            global_round,
                            pcfg,
                        );
                        for ((&k, (&assign, lat)), result) in
                            picked.iter().zip(assigns.iter().zip(lats)).zip(results)
                        {
                            in_flight.push(PhasePending {
                                client: k,
                                version: aggs,
                                latency: lat,
                                assigned: assign.count(),
                                result,
                            });
                        }
                    }
                    let (time, client) = timeline
                        .next_finish()
                        .expect("clients stay in flight while aggregations remain");
                    let idx = in_flight
                        .iter()
                        .position(|p| p.client == client)
                        .expect("finished client is in flight");
                    buffer.push(in_flight.swap_remove(idx));
                    if buffer.len() < acfg.buffer_k {
                        continue;
                    }
                    // Flush: staleness-discounted partial averaging
                    // (Eq. 16/17 with weights `w_k / (1+s)^a`), in
                    // deterministic (client, version) order.
                    let mut entries = std::mem::take(&mut buffer);
                    entries.sort_by_key(|p| (p.client, p.version));
                    let stalenesses: Vec<usize> =
                        entries.iter().map(|p| aggs - p.version).collect();
                    let mean_staleness =
                        stalenesses.iter().sum::<usize>() as f32 / entries.len() as f32;
                    let mean_assigned = entries.iter().map(|p| p.assigned as f32).sum::<f32>()
                        / entries.len() as f32;
                    let slowest = entries
                        .iter()
                        .map(|p| p.latency)
                        .max_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite latency"))
                        .expect("non-empty flush");
                    let mean_loss =
                        entries.iter().map(|p| p.result.loss).sum::<f32>() / entries.len() as f32;
                    let results: Vec<ClientResult> = entries
                        .into_iter()
                        .zip(&stalenesses)
                        .map(|(p, &s)| {
                            let mut r = p.result;
                            r.weight *= staleness_weight(s, acfg.staleness_exp);
                            r
                        })
                        .collect();
                    aggregate(&mut global, &mut heads, &partition, &results, m, n_modules);
                    // Record the ε the dispatches of this version used
                    // (merged updates from older versions trained under
                    // their own, earlier ε — inherent to staleness).
                    let eps = cur_eps.take().unwrap_or_else(|| match apa.as_mut() {
                        None => cfg.eps0,
                        Some(a) => a.epsilon(),
                    });
                    last_eps = eps;
                    eps_traces[m].push(eps);
                    let (vc, va) = validate_prefix(
                        &mut global,
                        &mut heads,
                        &partition,
                        m,
                        env,
                        pcfg.val_samples,
                        global_round,
                    );
                    if pcfg.use_apa {
                        if let Some(a) = apa.as_mut() {
                            a.adjust(vc, va);
                        }
                    }
                    records.push(ProphetRound {
                        round: global_round,
                        module: m,
                        epsilon: eps,
                        train_loss: mean_loss,
                        val_clean: vc,
                        val_adv: va,
                        latency_compute_s: slowest.compute_s,
                        latency_data_s: slowest.data_access_s,
                        latency_transfer_s: slowest.transfer_s,
                        mean_assigned,
                        mean_staleness,
                        round_time_s: time - last_clock,
                        completed: results.len(),
                        stragglers: 0,
                        dropped_out: 0,
                    });
                    last_clock = time;
                    aggs += 1;
                    global_round += 1;
                    timeline.bump_version();

                    let score = vc + va;
                    if score > best_score + 1e-4 {
                        best_score = score;
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if since_best >= pcfg.patience {
                            break;
                        }
                    }
                }
                // Clients still in flight at the module boundary are
                // discarded: module m is fixed before m+1 dispatches.
            } else {
                for _ in 0..rounds_per_module {
                    let eps = match apa.as_mut() {
                        None => cfg.eps0,
                        Some(a) => a.epsilon(),
                    };
                    last_eps = eps;
                    eps_traces[m].push(eps);

                    // Over-selection: sample extra clients; the round closes
                    // once `clients_per_round` of them have reported.
                    let target = cfg.clients_per_round;
                    let n_sel = over_select_count(target, pcfg.sched.over_select, cfg.n_clients);
                    let ids = env.sample_round_n(global_round, n_sel);
                    // Per-(round, client) real-time availability (paper §B.1
                    // degrade), from the stream shared with the schedulers.
                    let avail: Vec<(u64, f64)> = ids
                        .iter()
                        .map(|&k| prophet_availability(env, global_round, k))
                        .collect();
                    let perf_min = avail.iter().map(|&(_, p)| p).fold(f64::INFINITY, f64::min);
                    let assignments: Vec<ModuleAssignment> = avail
                        .iter()
                        .map(|&(mem, perf)| {
                            if pcfg.use_dma {
                                assign_modules(&partition, m, mem, perf, perf_min)
                            } else {
                                ModuleAssignment {
                                    current: m,
                                    last: m,
                                }
                            }
                        })
                        .collect();

                    // Virtual-time round simulation: each client's duration is
                    // the hwsim latency of its DMA-assigned window on its
                    // degraded device, so prophet clients (more modules) take
                    // longer and can straggle past the deadline.
                    let lat = client_latencies(env, &partition, &assignments, &ids, &avail, cfg);
                    let dropped = draw_dropouts(env, global_round, ids.len(), pcfg.sched.dropout_p);
                    let sim = simulate_round(&ids, &lat, &dropped, target, &pcfg.sched);
                    let cidx: Vec<usize> = sim
                        .completed
                        .iter()
                        .map(|k| ids.iter().position(|x| x == k).expect("completed id"))
                        .collect();
                    let c_assignments: Vec<ModuleAssignment> =
                        cidx.iter().map(|&i| assignments[i]).collect();

                    let lr = cfg.lr.at(global_round);
                    let results = run_clients(
                        env,
                        &global,
                        &heads,
                        &partition,
                        &c_assignments,
                        &sim.completed,
                        eps,
                        lr,
                        global_round,
                        pcfg,
                    );
                    let mean_loss = if results.is_empty() {
                        0.0
                    } else {
                        results.iter().map(|r| r.loss).sum::<f32>() / results.len() as f32
                    };

                    if !results.is_empty() {
                        aggregate(&mut global, &mut heads, &partition, &results, m, n_modules);
                    }

                    // Validation of the cascaded prefix (w*₁ ∘ ⋯ ∘ w_m^t).
                    let (vc, va) = validate_prefix(
                        &mut global,
                        &mut heads,
                        &partition,
                        m,
                        env,
                        pcfg.val_samples,
                        global_round,
                    );
                    if pcfg.use_apa {
                        if let Some(a) = apa.as_mut() {
                            a.adjust(vc, va);
                        }
                    }

                    // Latency accounting: the barrier cost actually paid is
                    // the slowest aggregated client.
                    let mean_assigned = if c_assignments.is_empty() {
                        0.0
                    } else {
                        c_assignments.iter().map(|a| a.count() as f32).sum::<f32>()
                            / c_assignments.len() as f32
                    };
                    records.push(ProphetRound {
                        round: global_round,
                        module: m,
                        epsilon: eps,
                        train_loss: mean_loss,
                        val_clean: vc,
                        val_adv: va,
                        latency_compute_s: sim.slowest_completed.compute_s,
                        latency_data_s: sim.slowest_completed.data_access_s,
                        latency_transfer_s: sim.slowest_completed.transfer_s,
                        mean_assigned,
                        mean_staleness: 0.0,
                        round_time_s: sim.round_time_s,
                        completed: sim.completed.len(),
                        stragglers: sim.stragglers.len(),
                        dropped_out: sim.dropped_out.len(),
                    });
                    global_round += 1;

                    let score = vc + va;
                    if score > best_score + 1e-4 {
                        best_score = score;
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if since_best >= pcfg.patience {
                            break;
                        }
                    }
                }
            }

            // Fix module m: record C*/A* and probe max‖Δz_m‖ for the next
            // module's APA reference (Eq. 11).
            let (c_star, a_star) = validate_prefix(
                &mut global,
                &mut heads,
                &partition,
                m,
                env,
                pcfg.val_samples,
                global_round,
            );
            prev_ratio = Some((c_star, a_star));
            if m + 1 < n_modules {
                eps_ref =
                    probe_delta_z(env, &mut global, &mut heads, &partition, m, last_eps, pcfg);
                delta_z_refs.push(eps_ref);
            }
        }

        ProphetOutcome {
            model: global,
            partition,
            rounds: records,
            eps_traces,
            delta_z_refs,
        }
    }
}

impl FlAlgorithm for FedProphet {
    fn name(&self) -> &'static str {
        "FedProphet"
    }

    fn run(&self, env: &FlEnv) -> FlOutcome {
        self.run_detailed(env).into_fl_outcome()
    }
}

/// `(module index, window flat params, window BN stats)` as trained by
/// one client.
type ModuleUpdate = (usize, Vec<f32>, Vec<(Tensor, Tensor)>);

/// A borrowed module contribution during aggregation: flat params, BN
/// stats, FedAvg weight.
type Contribution<'a> = (&'a Vec<f32>, &'a [(Tensor, Tensor)], f32);

/// One client's round result.
struct ClientResult {
    /// Per-module updates of the assigned window.
    modules: Vec<ModuleUpdate>,
    /// Trained aux head of the last assigned module (absent when it is
    /// the final module).
    aux: Option<(usize, Vec<f32>)>,
    weight: f32,
    loss: f32,
}

#[allow(clippy::too_many_arguments)]
fn run_clients(
    env: &FlEnv,
    global: &CascadeModel,
    heads: &[Option<AuxHead>],
    partition: &ModulePartition,
    assignments: &[ModuleAssignment],
    ids: &[usize],
    eps: f32,
    lr: f32,
    round: usize,
    pcfg: &ProphetConfig,
) -> Vec<ClientResult> {
    let cfg = &env.cfg;
    let jobs: Vec<(usize, ModuleAssignment)> = ids
        .iter()
        .copied()
        .zip(assignments.iter().copied())
        .collect();
    // Two-level parallelism: clients fan out over `outer` worker threads,
    // and each client's kernels get the leftover `inner` thread budget.
    let (outer, inner) = fp_tensor::parallel::thread_split(jobs.len());
    fp_tensor::parallel::parallel_map(&jobs, outer, |_, &(k, assign)| {
        let mut model = global.clone();
        let (from, to) = assign.atom_window(partition);
        let is_final = assign.last == partition.num_modules() - 1;
        let mut aux = if is_final {
            None
        } else {
            heads[assign.last].clone()
        };
        let wtc = WindowTrainConfig {
            from_atom: from,
            to_atom: to,
            epsilon: eps,
            mu: pcfg.mu,
            pgd_steps: cfg.pgd_steps,
            iters: cfg.local_iters,
            batch_size: cfg.batch_size,
            lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            seed: cfg.seed ^ (round as u64) << 24 ^ k as u64,
            backend_threads: inner,
        };
        let loss = train_module_window(
            &mut model,
            aux.as_mut(),
            &env.data.train,
            &env.splits[k].indices,
            &wtc,
        );
        let modules = (assign.current..=assign.last)
            .map(|n| {
                let (f, t) = partition.windows[n];
                (n, model.flat_params_range(f, t), model.bn_stats_range(f, t))
            })
            .collect();
        ClientResult {
            modules,
            aux: aux.map(|a| (assign.last, a.flat_params())),
            weight: env.splits[k].weight,
            loss,
        }
    })
}

/// Partial-average aggregation: modules by Eq. 16, aux heads by Eq. 17.
fn aggregate(
    global: &mut CascadeModel,
    heads: &mut [Option<AuxHead>],
    partition: &ModulePartition,
    results: &[ClientResult],
    m: usize,
    n_modules: usize,
) {
    for n in m..n_modules {
        // Eq. 16: S_n = clients that trained module n (M_k ≥ n).
        let contributions: Vec<Contribution<'_>> = results
            .iter()
            .flat_map(|r| {
                r.modules
                    .iter()
                    .filter(|(idx, _, _)| *idx == n)
                    .map(|(_, flat, bn)| (flat, bn.as_slice(), r.weight))
            })
            .collect();
        if contributions.is_empty() {
            continue;
        }
        let updates: Vec<(Vec<f32>, f32)> = contributions
            .iter()
            .map(|(flat, _, w)| ((*flat).clone(), *w))
            .collect();
        let avg = fp_fl::aggregate::weighted_average(&updates);
        let (f, t) = partition.windows[n];
        global.set_flat_params_range(&avg, f, t);
        // Average BN running statistics of the window.
        let total: f32 = contributions.iter().map(|(_, _, w)| *w).sum();
        if !contributions[0].1.is_empty() {
            let mut means: Vec<Tensor> = contributions[0]
                .1
                .iter()
                .map(|(mean, _)| Tensor::zeros(mean.shape()))
                .collect();
            let mut vars: Vec<Tensor> = contributions[0]
                .1
                .iter()
                .map(|(_, var)| Tensor::zeros(var.shape()))
                .collect();
            for (_, bn, w) in &contributions {
                let wn = *w / total;
                for (i, (mean, var)) in bn.iter().enumerate() {
                    means[i].axpy(wn, mean);
                    vars[i].axpy(wn, var);
                }
            }
            let stats: Vec<(Tensor, Tensor)> = means.into_iter().zip(vars).collect();
            global.set_bn_stats_range(&stats, f, t);
        }
    }
    // Eq. 17: K_n = clients whose *last* module is n.
    #[allow(clippy::needless_range_loop)] // index shared across several buffers
    for n in m..n_modules.saturating_sub(1) {
        let aux_updates: Vec<(Vec<f32>, f32)> = results
            .iter()
            .filter_map(|r| {
                r.aux
                    .as_ref()
                    .filter(|(idx, _)| *idx == n)
                    .map(|(_, flat)| (flat.clone(), r.weight))
            })
            .collect();
        if !aux_updates.is_empty() {
            let avg = fp_fl::aggregate::weighted_average(&aux_updates);
            if let Some(head) = heads[n].as_mut() {
                head.set_flat_params(&avg);
            }
        }
    }
}

/// Validation clean/adversarial accuracy of the cascaded prefix through
/// module `m` (its aux head is the exit; the final module uses the
/// backbone classifier). The adversarial attack is input-space PGD with
/// the training ε₀.
fn validate_prefix(
    global: &mut CascadeModel,
    heads: &mut [Option<AuxHead>],
    partition: &ModulePartition,
    m: usize,
    env: &FlEnv,
    val_samples: usize,
    round: usize,
) -> (f32, f32) {
    let n = env.data.val.len().min(val_samples);
    let idx: Vec<usize> = (0..n).collect();
    let (x, y) = env.data.val.batch(&idx);
    let cfg = &env.cfg;
    let pgd = Pgd::new(PgdConfig {
        steps: cfg.pgd_steps.max(1),
        ..PgdConfig::train_linf(cfg.eps0)
    });
    let mut rng = seeded_rng(cfg.seed ^ 0x7E57 ^ round as u64);
    let (_, t) = partition.windows[m];
    let is_final = m + 1 == partition.num_modules();
    if is_final {
        let mut target = ModelTarget::new(global);
        let clean = accuracy_of(&mut target, &x, &y);
        let adv_x = pgd.attack(&mut target, &x, &y, &mut rng);
        let adv = accuracy_of(&mut target, &adv_x, &y);
        (clean, adv)
    } else {
        let head = heads[m].as_mut().expect("non-final module has a head");
        let mut target = ModuleTarget::new(global, head, 0, t, 0.0);
        let clean = accuracy_of(&mut target, &x, &y);
        let adv_x = pgd.attack(&mut target, &x, &y, &mut rng);
        let adv = accuracy_of(&mut target, &adv_x, &y);
        (clean, adv)
    }
}

fn accuracy_of(target: &mut dyn AttackTarget, x: &Tensor, y: &[usize]) -> f32 {
    let logits = target.logits(x);
    let preds = argmax_rows(&logits);
    preds.iter().zip(y).filter(|(p, l)| p == l).count() as f32 / y.len() as f32
}

/// Clients probe `max‖Δz_m‖₂` of the fixed module `m` and the server
/// averages (the `E[·]` of Eq. 11).
fn probe_delta_z(
    env: &FlEnv,
    global: &mut CascadeModel,
    heads: &mut [Option<AuxHead>],
    partition: &ModulePartition,
    m: usize,
    eps_star: f32,
    pcfg: &ProphetConfig,
) -> f32 {
    let cfg = &env.cfg;
    let (f, t) = partition.windows[m];
    let head = heads[m].as_mut().expect("probed module has a head");
    let probe_clients: Vec<usize> = env.sample_round(usize::MAX - m);
    let mut sum = 0.0f64;
    for &k in &probe_clients {
        let worst = max_feature_perturbation(
            global,
            head,
            f,
            t,
            &env.data.train,
            &env.splits[k].indices,
            eps_star,
            pcfg.mu,
            cfg.pgd_steps,
            cfg.batch_size,
            pcfg.probe_batches,
            cfg.seed ^ 0x0B5E ^ k as u64,
        );
        sum += worst as f64;
    }
    (sum / probe_clients.len() as f64) as f32
}

/// Client `k`'s round-`t` real-time availability for FedProphet's loop —
/// memory `budget·(0.8 + 0.2u)`, performance `peak·(0.2 + 0.8u)` — drawn
/// from the per-`(round, client)` stream shared with both schedulers, so
/// a synchronous round and an async dispatch against the same model
/// version degrade a client identically.
fn prophet_availability(env: &FlEnv, t: usize, k: usize) -> (u64, f64) {
    let mut rng = env.client_rng(t, k, SALT_AVAIL);
    let mem = (env.mem_budget(k) as f64 * (0.8 + 0.2 * rng.gen::<f64>())) as u64;
    let perf = env.fleet[k].device.tflops * (0.2 + 0.8 * rng.gen::<f64>());
    (mem, perf)
}

/// The hwsim cost description of one DMA-assigned module window — the
/// latency model plus the window-weights payload that crosses the
/// client's link.
fn window_latency_model(
    env: &FlEnv,
    partition: &ModulePartition,
    assign: ModuleAssignment,
    cfg: &fp_fl::FlConfig,
) -> (LatencyModel, Payload) {
    let mem_req: u64 = (assign.current..=assign.last)
        .map(|n| partition.mem_bytes[n])
        .sum();
    let macs: u64 = (assign.current..=assign.last)
        .map(|n| partition.fwd_macs[n])
        .sum();
    let (f, t) = assign.atom_window(partition);
    let model = LatencyModel {
        mem_req_bytes: mem_req,
        fwd_macs_per_sample: macs,
        batch: cfg.batch_size,
        profile: TrainingPassProfile::adversarial(cfg.pgd_steps),
    };
    // Only the window's weights ship (down and, after training, back up);
    // the (GAP→linear) aux head is negligible next to even one conv atom
    // and is not counted.
    let payload = Payload::window(param_transfer_bytes(&env.reference_specs[f..t]));
    (model, payload)
}

/// Client `k`'s device sample with its availability overridden by the
/// round's degradation draw.
fn degraded_sample(env: &FlEnv, k: usize, mem: u64, perf: f64) -> fp_hwsim::DeviceSample {
    let mut sample = env.fleet[k];
    sample.avail_mem_bytes = mem;
    sample.avail_tflops = perf;
    sample
}

/// Per-selected-client dispatch latency over the DMA-assigned window
/// (down-link window transfer + compute + swap traffic + up-link update
/// transfer) — the durations fed to the round's virtual-time event queue.
fn client_latencies(
    env: &FlEnv,
    partition: &ModulePartition,
    assignments: &[ModuleAssignment],
    ids: &[usize],
    avail: &[(u64, f64)],
    cfg: &fp_fl::FlConfig,
) -> Vec<ClientLatency> {
    ids.iter()
        .zip(assignments.iter())
        .zip(avail.iter())
        .map(|((&k, assign), &(mem_avail, perf))| {
            let (model, payload) = window_latency_model(env, partition, *assign, cfg);
            model.dispatch_round_trip(
                &degraded_sample(env, k, mem_avail, perf),
                cfg.local_iters,
                &payload,
            )
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod testenv {
    use fp_data::{generate, partition_pathological, SynthConfig};
    use fp_fl::{FlConfig, FlEnv};
    use fp_hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
    use fp_nn::models::{vgg_atom_specs, VggConfig};

    /// A small learnable environment for FedProphet tests: three-stage
    /// tiny VGG so the partitioner produces multiple modules.
    pub fn make_env(rounds: usize, seed: u64) -> FlEnv {
        let cfg = FlConfig::fast(rounds, seed);
        let data = generate(&SynthConfig::tiny(4, 8), seed);
        let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
        let mut rng = fp_tensor::seeded_rng(seed ^ 0xF1EE7);
        let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
        FlEnv::new(data, splits, fleet, specs, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::testenv::make_env;
    use super::*;

    #[test]
    fn fedprophet_runs_end_to_end_and_learns() {
        // Seed retuned (3 → 4) when availability moved to per-(round,
        // client) streams: thresholds are seed-sensitive at this scale.
        let env = make_env(12, 4);
        let outcome = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
        assert!(
            outcome.partition.num_modules() >= 2,
            "env must exercise multi-module cascade, got {:?}",
            outcome.partition.windows
        );
        let last = outcome.rounds.last().unwrap();
        assert!(
            last.val_clean > 0.4,
            "final clean accuracy {} too low",
            last.val_clean
        );
        assert!(
            last.val_adv > 0.2,
            "final adversarial accuracy {} too low",
            last.val_adv
        );
        // Every module produced an ε trace; module 1 pins ε₀.
        assert!(outcome.eps_traces[0]
            .iter()
            .all(|&e| (e - env.cfg.eps0).abs() < 1e-7));
        assert!(outcome.eps_traces.len() == outcome.partition.num_modules());
        // Latency was accounted.
        assert!(outcome.total_latency().total() > 0.0);
    }

    #[test]
    fn dma_assigns_more_modules_to_prophets() {
        let env = make_env(6, 11);
        let with_dma = FedProphet::new(ProphetConfig {
            rounds_per_module: Some(2),
            ..ProphetConfig::default()
        })
        .run_detailed(&env);
        let without = FedProphet::new(ProphetConfig {
            rounds_per_module: Some(2),
            use_dma: false,
            ..ProphetConfig::default()
        })
        .run_detailed(&env);
        let avg_with: f32 = with_dma.rounds.iter().map(|r| r.mean_assigned).sum::<f32>()
            / with_dma.rounds.len() as f32;
        let avg_without: f32 = without.rounds.iter().map(|r| r.mean_assigned).sum::<f32>()
            / without.rounds.len() as f32;
        assert!((avg_without - 1.0).abs() < 1e-6, "no-DMA assigns exactly 1");
        assert!(
            avg_with > avg_without,
            "DMA must assign extra modules ({avg_with} vs {avg_without})"
        );
    }

    #[test]
    fn single_module_degenerates_to_joint_training() {
        // With unlimited memory the partition is one module and FedProphet
        // trains end-to-end (paper Figure 9's right edge).
        let mut env = make_env(4, 7);
        // Force a giant budget by replacing the fleet with max-memory
        // samples (budgets derive from availability).
        for d in &mut env.fleet {
            d.avail_mem_bytes = u64::MAX / 4;
        }
        let env = fp_fl::FlEnv::new(
            env.data.clone(),
            env.splits.clone(),
            env.fleet.clone(),
            env.reference_specs.clone(),
            env.cfg,
        );
        let outcome = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
        assert_eq!(outcome.partition.num_modules(), 1);
        assert!(outcome.rounds.last().unwrap().val_clean > 0.3);
    }

    #[test]
    fn run_is_deterministic() {
        let env = make_env(4, 9);
        let a = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
        let b = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
        assert_eq!(a.model.flat_params(), b.model.flat_params());
        assert_eq!(a.rounds.len(), b.rounds.len());
    }

    #[test]
    fn wait_all_round_time_equals_barrier_latency() {
        let env = make_env(4, 15);
        let out = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
        for r in &out.rounds {
            assert_eq!(r.completed, env.cfg.clients_per_round);
            assert_eq!(r.stragglers + r.dropped_out, 0);
            let barrier = r.latency_compute_s + r.latency_data_s + r.latency_transfer_s;
            assert!(
                (r.round_time_s - barrier).abs() < 1e-9,
                "wait-all round time {} vs barrier {barrier}",
                r.round_time_s
            );
        }
    }

    #[test]
    fn async_module_windows_run_and_learn() {
        // FedProphet's module-window loop under barrier-free async
        // aggregation: staleness shows up in the ledger, every
        // aggregation merges exactly buffer_k updates, and the cascade
        // still learns.
        let env = make_env(12, 4);
        let out = FedProphet::new(ProphetConfig {
            async_agg: Some(fp_fl::AsyncConfig {
                concurrency: 4,
                buffer_k: 2,
                staleness_exp: 0.5,
                ..AsyncConfig::default()
            }),
            ..ProphetConfig::default()
        })
        .run_detailed(&env);
        assert!(out.partition.num_modules() >= 2);
        assert_eq!(out.rounds.len(), 12);
        for r in &out.rounds {
            assert_eq!(r.completed, 2, "every flush merges buffer_k updates");
            assert_eq!(r.stragglers + r.dropped_out, 0);
            assert!(r.round_time_s > 0.0);
            assert!(r.train_loss.is_finite());
        }
        assert!(
            out.rounds.iter().any(|r| r.mean_staleness > 0.0),
            "a concurrency above buffer_k must produce stale merges"
        );
        assert!(out.rounds.last().unwrap().val_clean > 0.3);
    }

    #[test]
    fn async_module_windows_are_deterministic() {
        let env = make_env(6, 9);
        let cfg = ProphetConfig {
            rounds_per_module: Some(2),
            async_agg: Some(fp_fl::AsyncConfig::default()),
            ..ProphetConfig::default()
        };
        let a = FedProphet::new(cfg).run_detailed(&env);
        let b = FedProphet::new(cfg).run_detailed(&env);
        assert_eq!(a.model.flat_params(), b.model.flat_params());
        assert_eq!(a.rounds.len(), b.rounds.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.round_time_s, y.round_time_s);
            assert_eq!(x.mean_staleness, y.mean_staleness);
        }
    }

    #[test]
    fn async_beats_wait_all_virtual_clock() {
        // The point of removing the barrier: same number of
        // aggregations, strictly less virtual wall-clock than waiting
        // for the slowest client every round.
        let env = make_env(8, 11);
        let base = ProphetConfig {
            rounds_per_module: Some(3),
            ..ProphetConfig::default()
        };
        let barrier = FedProphet::new(base).run_detailed(&env);
        let async_out = FedProphet::new(ProphetConfig {
            async_agg: Some(fp_fl::AsyncConfig {
                concurrency: env.cfg.clients_per_round,
                buffer_k: 2,
                staleness_exp: 0.5,
                ..AsyncConfig::default()
            }),
            ..base
        })
        .run_detailed(&env);
        assert_eq!(barrier.rounds.len(), async_out.rounds.len());
        assert!(
            async_out.total_round_time() < barrier.total_round_time(),
            "async must shrink virtual wall-clock: {} vs {}",
            async_out.total_round_time(),
            barrier.total_round_time()
        );
    }

    #[test]
    fn deadline_interacts_with_dma_assignment() {
        // A tight deadline cuts stragglers, and the virtual wall-clock is
        // strictly below the barrier cost of waiting for every client —
        // the heterogeneity-aware scheduling the paper's §3 motivates.
        let env = make_env(8, 11);
        let base = ProphetConfig {
            rounds_per_module: Some(3),
            ..ProphetConfig::default()
        };
        let barrier = FedProphet::new(base).run_detailed(&env);
        let sched = FedProphet::new(ProphetConfig {
            sched: fp_fl::SchedConfig {
                over_select: 1.5,
                dropout_p: 0.1,
                deadline: fp_fl::DeadlinePolicy::MedianMultiple(1.0),
                min_completions: 1,
            },
            ..base
        })
        .run_detailed(&env);
        let cut: usize = sched.rounds.iter().map(|r| r.stragglers).sum();
        assert!(cut > 0, "median deadline must cut some stragglers");
        assert!(
            sched.total_round_time() < barrier.total_round_time(),
            "deadline scheduling must shrink virtual wall-clock: {} vs {}",
            sched.total_round_time(),
            barrier.total_round_time()
        );
        // Every aggregated round still made progress.
        for r in &sched.rounds {
            assert!(r.completed >= 1);
            assert!(r.train_loss.is_finite());
        }
    }
}
