//! Differentiated Module Assignment (paper §6.3).

use crate::partition::ModulePartition;
use serde::Serialize;

/// One client's assignment for a round: it trains modules
/// `[current, last]` (inclusive), i.e. the paper's `{m, …, M_k^{(t)}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModuleAssignment {
    /// First module index (the module currently being learned, `m`).
    pub current: usize,
    /// Last assigned module `M_k` (≥ `current`).
    pub last: usize,
}

impl ModuleAssignment {
    /// Number of modules assigned.
    pub fn count(&self) -> usize {
        self.last - self.current + 1
    }

    /// The atom window `[from, to)` covered by the assignment.
    pub fn atom_window(&self, partition: &ModulePartition) -> (usize, usize) {
        (
            partition.windows[self.current].0,
            partition.windows[self.last].1,
        )
    }
}

/// Chooses the largest `M_k` satisfying the memory constraint (Eq. 14)
/// and the FLOPs constraint (Eq. 15):
///
/// * cumulative `MemReq(w_m ∘ ⋯ ∘ w_{M_k} ∘ θ_{M_k}) ≤ R_k`, and
/// * `FLOPs(w_m ∘ ⋯ ∘ w_{M_k} ∘ θ_{M_k}) ≤ (P_k / P_min) · FLOPs(w_m)` —
///   training the extended window on this client must not take longer
///   than the slowest client training module `m` alone, so "prophet"
///   clients never stretch the synchronization barrier.
///
/// `mem_budget` is `R_k` in bytes, `perf` is `P_k`, `perf_min` is
/// `P_min^{(t)}` over this round's participants. Module memory/FLOPs come
/// from the partition's per-module costing; the cumulative window cost is
/// approximated by summing module costs (the shared-boundary activations
/// counted once per module make this a slight over-estimate — the
/// conservative direction).
///
/// # Panics
///
/// Panics if `current` is out of range or `perf_min` is not positive.
pub fn assign_modules(
    partition: &ModulePartition,
    current: usize,
    mem_budget: u64,
    perf: f64,
    perf_min: f64,
) -> ModuleAssignment {
    assert!(
        current < partition.num_modules(),
        "module index out of range"
    );
    assert!(perf_min > 0.0, "perf_min must be positive");
    let flops_limit = (perf / perf_min) * partition.fwd_macs[current] as f64;
    let mut last = current;
    let mut mem = 0u64;
    let mut flops = 0u64;
    for m in current..partition.num_modules() {
        mem = mem.saturating_add(partition.mem_bytes[m]);
        flops = flops.saturating_add(partition.fwd_macs[m]);
        let fits_mem = mem <= mem_budget;
        let fits_flops = flops as f64 <= flops_limit;
        if m == current {
            // The current module is always assigned (the partitioner
            // guarantees it fits R_min ≤ R_k; if availability dipped
            // below, the client trains it anyway — with swapping charged
            // by the latency model).
            continue;
        }
        if fits_mem && fits_flops {
            last = m;
        } else {
            break;
        }
    }
    ModuleAssignment { current, last }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition() -> ModulePartition {
        ModulePartition {
            windows: vec![(0, 2), (2, 4), (4, 5), (5, 7)],
            mem_bytes: vec![100, 80, 60, 90],
            fwd_macs: vec![1000, 800, 500, 700],
            oversized: false,
        }
    }

    #[test]
    fn slowest_client_gets_only_current_module() {
        let p = partition();
        let a = assign_modules(&p, 1, 80, 1.0, 1.0);
        assert_eq!(
            a,
            ModuleAssignment {
                current: 1,
                last: 1
            }
        );
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn memory_constraint_limits_assignment() {
        let p = partition();
        // Plenty of compute (P_k/P_min = 100) but memory for two modules.
        let a = assign_modules(&p, 1, 145, 100.0, 1.0);
        assert_eq!(a.last, 2, "80+60 fits 145, adding 90 does not");
    }

    #[test]
    fn flops_constraint_limits_assignment() {
        let p = partition();
        // Plenty of memory but only 2× compute: limit = 2·800 = 1600;
        // 800+500 = 1300 fits, +700 = 2000 does not.
        let a = assign_modules(&p, 1, u64::MAX, 2.0, 1.0);
        assert_eq!(a.last, 2);
    }

    #[test]
    fn prophet_client_takes_everything() {
        let p = partition();
        let a = assign_modules(&p, 0, u64::MAX, 1000.0, 1.0);
        assert_eq!(a.last, 3);
        assert_eq!(a.atom_window(&p), (0, 7));
    }

    #[test]
    fn assignment_never_skips_current() {
        let p = partition();
        // Budget below even the current module: still assigned.
        let a = assign_modules(&p, 2, 1, 1.0, 1.0);
        assert_eq!(
            a,
            ModuleAssignment {
                current: 2,
                last: 2
            }
        );
    }

    #[test]
    fn window_spans_modules() {
        let p = partition();
        let a = ModuleAssignment {
            current: 1,
            last: 2,
        };
        assert_eq!(a.atom_window(&p), (2, 5));
    }
}
