//! Attacking a module window at its input feature.

use crate::aux_head::AuxHead;
use fp_attack::AttackTarget;
use fp_nn::{CascadeModel, CrossEntropyLoss, Mode};
use fp_tensor::Tensor;

/// An [`AttackTarget`] over a module window `w_m ∘ ⋯ ∘ w_M` plus its
/// auxiliary head, differentiated at the window's **input feature**
/// `z_{m−1}` — the adversarial-cascade-learning inner maximization of
/// Eq. 9/13.
///
/// The loss is the strong-convexity regularized early-exit loss
/// `l_CE(aux(z_M), y) + µ/2·‖z_M‖²`.
pub struct ModuleTarget<'a> {
    model: &'a mut CascadeModel,
    aux: &'a mut AuxHead,
    from: usize,
    to: usize,
    mu: f32,
    ce: CrossEntropyLoss,
}

impl<'a> ModuleTarget<'a> {
    /// Wraps atoms `[from, to)` of `model` with head `aux` and strong
    /// convexity coefficient `mu`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid window.
    pub fn new(
        model: &'a mut CascadeModel,
        aux: &'a mut AuxHead,
        from: usize,
        to: usize,
        mu: f32,
    ) -> Self {
        assert!(
            from < to && to <= model.num_atoms(),
            "bad window {from}..{to}"
        );
        assert!(mu >= 0.0, "mu must be non-negative");
        ModuleTarget {
            model,
            aux,
            from,
            to,
            mu,
            ce: CrossEntropyLoss::new(),
        }
    }

    /// Forward in `mode`, returning `(z_out, logits)`.
    pub fn forward_full(&mut self, z_in: &Tensor, mode: Mode) -> (Tensor, Tensor) {
        let z_out = self.model.forward_range(z_in, self.from, self.to, mode);
        let logits = self.aux.forward(&z_out, mode);
        (z_out, logits)
    }

    /// The regularized early-exit loss and its gradients, in `mode`.
    ///
    /// Returns `(loss, grad_z_in)`; parameter gradients of the window and
    /// the head are **accumulated** (the training step consumes them, the
    /// attack path zeroes them via [`AttackTarget::loss_and_input_grad`]).
    pub fn loss_and_grads(&mut self, z_in: &Tensor, labels: &[usize], mode: Mode) -> (f32, Tensor) {
        let (z_out, logits) = self.forward_full(z_in, mode);
        let (ce_loss, dlogits) = self.ce.forward(&logits, labels);
        let batch = labels.len() as f32;
        // µ/2·‖z_out‖² (mean over batch).
        let reg = 0.5 * self.mu * z_out.data().iter().map(|&v| v * v).sum::<f32>() / batch;
        let mut dz_out = self.aux.backward(&dlogits);
        dz_out.axpy(self.mu / batch, &z_out);
        let dz_in = self.model.backward_range(&dz_out, self.from, self.to);
        (ce_loss + reg, dz_in)
    }

    /// Zeroes the window's and head's parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.model.params_range_mut(self.from, self.to) {
            p.zero_grad();
        }
        self.aux.zero_grad();
    }
}

impl AttackTarget for ModuleTarget<'_> {
    fn loss_and_input_grad(&mut self, z_in: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (loss, dz) = self.loss_and_grads(z_in, labels, Mode::Eval);
        self.zero_grad();
        (loss, dz)
    }

    fn logits(&mut self, z_in: &Tensor) -> Tensor {
        let z_out = self
            .model
            .forward_range(z_in, self.from, self.to, Mode::Eval);
        self.aux.forward(&z_out, Mode::Eval)
    }
}

/// An [`AttackTarget`] over the **final** module window, whose exit is the
/// backbone classifier itself (`l_M = l`, paper Proposition 1): plain
/// cross-entropy, no auxiliary head, no µ-regularizer.
pub struct FinalWindowTarget<'a> {
    model: &'a mut CascadeModel,
    from: usize,
    to: usize,
    ce: CrossEntropyLoss,
}

impl<'a> FinalWindowTarget<'a> {
    /// Wraps atoms `[from, to)`; `to` must be the model end.
    ///
    /// # Panics
    ///
    /// Panics unless `to == model.num_atoms()`.
    pub fn new(model: &'a mut CascadeModel, from: usize, to: usize) -> Self {
        assert_eq!(
            to,
            model.num_atoms(),
            "final window must reach the model end"
        );
        assert!(from < to, "bad window");
        FinalWindowTarget {
            model,
            from,
            to,
            ce: CrossEntropyLoss::new(),
        }
    }

    /// Zeroes the window's parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.model.params_range_mut(self.from, self.to) {
            p.zero_grad();
        }
    }

    /// One training pass in `Train` mode: accumulates window gradients and
    /// returns the loss (the caller applies the optimizer step).
    pub fn train_step(&mut self, z_in: &Tensor, labels: &[usize]) -> f32 {
        let logits = self
            .model
            .forward_range(z_in, self.from, self.to, Mode::Train);
        let (loss, dlogits) = self.ce.forward(&logits, labels);
        self.model.backward_range(&dlogits, self.from, self.to);
        loss
    }
}

impl AttackTarget for FinalWindowTarget<'_> {
    fn loss_and_input_grad(&mut self, z_in: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let logits = self
            .model
            .forward_range(z_in, self.from, self.to, Mode::Eval);
        let (loss, dlogits) = self.ce.forward(&logits, labels);
        let dz = self.model.backward_range(&dlogits, self.from, self.to);
        self.zero_grad();
        (loss, dz)
    }

    fn logits(&mut self, z_in: &Tensor) -> Tensor {
        self.model
            .forward_range(z_in, self.from, self.to, Mode::Eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_attack::{NormBall, Pgd, PgdConfig};
    use fp_nn::models;

    fn setup() -> (CascadeModel, AuxHead) {
        let mut rng = fp_tensor::seeded_rng(0);
        let model = models::tiny_vgg(3, 8, 4, &[6, 8, 12], &mut rng);
        let feature = model.feature_shape(2); // output of atom 1 window end
        let aux = AuxHead::new("aux", &feature, 4, &mut rng);
        (model, aux)
    }

    #[test]
    fn loss_includes_regularizer() {
        let (mut model, mut aux) = setup();
        let mut rng = fp_tensor::seeded_rng(1);
        let z0 = model.forward_range(
            &Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng),
            0,
            1,
            Mode::Eval,
        );
        let mut t_reg = ModuleTarget::new(&mut model, &mut aux, 1, 2, 1.0);
        let (with_reg, _) = t_reg.loss_and_grads(&z0, &[0, 1], Mode::Eval);
        t_reg.zero_grad();
        let mut t_noreg = ModuleTarget::new(&mut model, &mut aux, 1, 2, 0.0);
        let (without, _) = t_noreg.loss_and_grads(&z0, &[0, 1], Mode::Eval);
        assert!(
            with_reg > without,
            "regularized loss {with_reg} must exceed {without}"
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let (mut model, mut aux) = setup();
        let mut rng = fp_tensor::seeded_rng(2);
        let z0 = model.forward_range(
            &Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng),
            0,
            1,
            Mode::Eval,
        );
        let labels = [2usize];
        let mu = 0.1;
        let mut target = ModuleTarget::new(&mut model, &mut aux, 1, 2, mu);
        let (_, grad) = target.loss_and_input_grad(&z0, &labels);
        let h = 2e-3f32;
        // Probe a few coordinates.
        for i in (0..z0.numel()).step_by(z0.numel() / 7 + 1) {
            let mut zp = z0.clone();
            zp.data_mut()[i] += h;
            let (lp, _) = target.loss_and_input_grad(&zp, &labels);
            let mut zm = z0.clone();
            zm.data_mut()[i] -= h;
            let (lm, _) = target.loss_and_input_grad(&zm, &labels);
            let num = (lp - lm) / (2.0 * h);
            let diff = (grad.data()[i] - num).abs();
            assert!(
                diff < 2e-2 + 0.05 * num.abs().max(grad.data()[i].abs()),
                "coord {i}: analytic {} vs numeric {num}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn pgd_on_intermediate_features_increases_loss() {
        let (mut model, mut aux) = setup();
        let mut rng = fp_tensor::seeded_rng(3);
        let z0 = model.forward_range(
            &Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng),
            0,
            1,
            Mode::Eval,
        );
        let labels = [0, 1, 2, 3];
        let mut target = ModuleTarget::new(&mut model, &mut aux, 1, 2, 1e-3);
        let (clean_loss, _) = target.loss_and_input_grad(&z0, &labels);
        let eps = 0.5 * z0.norm_l2() / (labels.len() as f32).sqrt();
        let pgd = Pgd::new(PgdConfig {
            steps: 5,
            alpha: None,
            ball: NormBall::L2(eps),
            random_start: true,
            restarts: 1,
            clamp: None,
        });
        let adv = pgd.attack(&mut target, &z0, &labels, &mut rng);
        let (adv_loss, _) = target.loss_and_input_grad(&adv, &labels);
        assert!(
            adv_loss > clean_loss,
            "feature-space PGD failed: {adv_loss} <= {clean_loss}"
        );
    }
}
