//! Client-side adversarial cascade training (paper §5.1, Eq. 9/13).

use crate::aux_head::AuxHead;
use crate::module_target::ModuleTarget;
use fp_attack::{NormBall, Pgd, PgdConfig};
use fp_data::{BatchIter, Dataset};
use fp_nn::{CascadeModel, Mode, Param, Sgd};
use fp_tensor::{seeded_rng, Tensor};

/// Configuration for training one assigned module window on one client
/// for one round.
#[derive(Debug, Clone, Copy)]
pub struct WindowTrainConfig {
    /// First atom of the window (start of module `m`).
    pub from_atom: usize,
    /// One past the last atom of the window (end of module `M_k`).
    pub to_atom: usize,
    /// Perturbation budget on the window input: ℓ∞ `ε₀` when the window
    /// starts at the image input, else the APA-produced ℓ2 `ε_{m−1}`.
    pub epsilon: f32,
    /// Strong convexity coefficient µ (Eq. 9).
    pub mu: f32,
    /// PGD steps of the inner maximization.
    pub pgd_steps: usize,
    /// Local SGD iterations `E`.
    pub iters: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Seed (per client and round).
    pub seed: u64,
    /// Kernel threads for this client's GEMM/im2col traffic: `0` keeps the
    /// process-default backend, `n` pins a `Parallel` backend capped at
    /// `n` threads. Federated loops running clients on parallel worker
    /// threads set this from `fp_tensor::parallel::thread_split` so the
    /// two parallelism levels never oversubscribe the machine.
    pub backend_threads: usize,
}

impl WindowTrainConfig {
    fn ball(&self) -> (NormBall, Option<(f32, f32)>) {
        if self.from_atom == 0 {
            (NormBall::Linf(self.epsilon), Some((0.0, 1.0)))
        } else {
            (NormBall::L2(self.epsilon), None)
        }
    }
}

/// Adversarially trains atoms `[from_atom, to_atom)` of `model` (with head
/// `aux`; `None` when the window ends in the backbone classifier) on the
/// client's local data; earlier atoms stay fixed and provide the input
/// features. Returns the mean regularized training loss.
///
/// Each iteration: freeze-forward to `z_{m−1}`, run PGD on the feature
/// within the ε-ball, then take one SGD step on the window and head
/// parameters against the strong-convexity regularized early-exit loss.
///
/// # Panics
///
/// Panics if the window is invalid or the client has no data.
pub fn train_module_window(
    model: &mut CascadeModel,
    aux: Option<&mut AuxHead>,
    ds: &Dataset,
    indices: &[usize],
    cfg: &WindowTrainConfig,
) -> f32 {
    assert!(!indices.is_empty(), "client has no data");
    assert!(
        cfg.from_atom < cfg.to_atom && cfg.to_atom <= model.num_atoms(),
        "bad window"
    );
    let mut it = BatchIter::new(ds, indices, cfg.batch_size, cfg.seed);
    let mut opt = Sgd::new(cfg.momentum, cfg.weight_decay);
    let mut rng = seeded_rng(cfg.seed ^ 0xCA5CADE);
    let (ball, clamp) = cfg.ball();
    let attack = (cfg.pgd_steps > 0 && cfg.epsilon > 0.0).then(|| {
        Pgd::new(PgdConfig {
            steps: cfg.pgd_steps,
            alpha: None,
            ball,
            random_start: true,
            restarts: 1,
            clamp,
        })
    });
    let mut aux = aux;
    if cfg.backend_threads > 0 {
        let backend = fp_tensor::backend_for_threads(cfg.backend_threads);
        model.set_backend(&backend);
        if let Some(a) = aux.as_deref_mut() {
            a.set_backend(&backend);
        }
    }
    let mut total = 0.0f64;
    for _ in 0..cfg.iters {
        let (x, y) = it.next_batch();
        let z_in = if cfg.from_atom == 0 {
            x
        } else {
            model.forward_range(&x, 0, cfg.from_atom, Mode::Eval)
        };
        let loss = step_window(
            model,
            aux.as_deref_mut(),
            &z_in,
            &y,
            cfg,
            attack.as_ref(),
            &mut opt,
            &mut rng,
        );
        total += loss as f64;
    }
    (total / cfg.iters as f64) as f32
}

#[allow(clippy::too_many_arguments)]
fn step_window(
    model: &mut CascadeModel,
    aux: Option<&mut AuxHead>,
    z_in: &Tensor,
    y: &[usize],
    cfg: &WindowTrainConfig,
    attack: Option<&Pgd>,
    opt: &mut Sgd,
    rng: &mut rand::rngs::StdRng,
) -> f32 {
    // Inner maximization on the window input feature.
    let (adv_z, loss) = match aux {
        Some(aux) => {
            let mut target = ModuleTarget::new(model, aux, cfg.from_atom, cfg.to_atom, cfg.mu);
            let adv_z = match attack {
                Some(p) => p.attack(&mut target, z_in, y, rng),
                None => z_in.clone(),
            };
            target.zero_grad();
            let (loss, _) = target.loss_and_grads(&adv_z, y, Mode::Train);
            let mut params: Vec<&mut Param> = model.params_range_mut(cfg.from_atom, cfg.to_atom);
            params.extend(aux.params_mut());
            opt.step(&mut params, cfg.lr);
            (adv_z, loss)
        }
        None => {
            // Final window: the backbone classifier is the exit; plain CE
            // (`l_M = l`, paper Proposition 1), no µ-regularizer.
            let mut target =
                crate::module_target::FinalWindowTarget::new(model, cfg.from_atom, cfg.to_atom);
            let adv_z = match attack {
                Some(p) => p.attack(&mut target, z_in, y, rng),
                None => z_in.clone(),
            };
            target.zero_grad();
            let loss = target.train_step(&adv_z, y);
            let mut params: Vec<&mut Param> = model.params_range_mut(cfg.from_atom, cfg.to_atom);
            opt.step(&mut params, cfg.lr);
            (adv_z, loss)
        }
    };
    let _ = adv_z;
    loss
}

/// Probes the largest output-feature perturbation of a *fixed* module
/// window (paper §6.2: after fixing module `m`, clients report
/// `max‖Δz_m‖₂` under the input perturbation `ε_{m−1}`; the server
/// averages these to seed the next module's APA reference).
///
/// Returns the maximum per-sample ℓ2 perturbation of the window output
/// over `n_batches` local batches.
#[allow(clippy::too_many_arguments)]
pub fn max_feature_perturbation(
    model: &mut CascadeModel,
    aux: &mut AuxHead,
    from_atom: usize,
    to_atom: usize,
    ds: &Dataset,
    indices: &[usize],
    epsilon_in: f32,
    mu: f32,
    pgd_steps: usize,
    batch_size: usize,
    n_batches: usize,
    seed: u64,
) -> f32 {
    let mut it = BatchIter::new(ds, indices, batch_size, seed);
    let mut rng = seeded_rng(seed ^ 0xDE17A);
    let (ball, clamp) = if from_atom == 0 {
        (NormBall::Linf(epsilon_in), Some((0.0, 1.0)))
    } else {
        (NormBall::L2(epsilon_in), None)
    };
    let pgd = Pgd::new(PgdConfig {
        steps: pgd_steps.max(1),
        alpha: None,
        ball,
        random_start: true,
        restarts: 1,
        clamp,
    });
    let mut worst = 0.0f32;
    for _ in 0..n_batches {
        let (x, y) = it.next_batch();
        let z_in = if from_atom == 0 {
            x
        } else {
            model.forward_range(&x, 0, from_atom, Mode::Eval)
        };
        let adv = {
            let mut target = ModuleTarget::new(model, aux, from_atom, to_atom, mu);
            pgd.attack(&mut target, &z_in, &y, &mut rng)
        };
        let z_clean = model.forward_range(&z_in, from_atom, to_atom, Mode::Eval);
        let z_adv = model.forward_range(&adv, from_atom, to_atom, Mode::Eval);
        let diff = z_adv.sub(&z_clean);
        let batch = diff.shape()[0];
        let per: usize = diff.shape()[1..].iter().product();
        for s in 0..batch {
            let n = diff.data()[s * per..(s + 1) * per]
                .iter()
                .map(|&v| v as f64 * v as f64)
                .sum::<f64>()
                .sqrt() as f32;
            worst = worst.max(n);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_data::{generate, SynthConfig};
    use fp_nn::models;

    fn setup() -> (CascadeModel, Vec<AuxHead>, Dataset) {
        let mut rng = fp_tensor::seeded_rng(0);
        let model = models::tiny_vgg(3, 8, 4, &[6, 8, 12], &mut rng);
        let heads = (1..model.num_atoms())
            .map(|k| AuxHead::new("aux", &model.feature_shape(k), 4, &mut rng))
            .collect();
        let ds = generate(&SynthConfig::tiny(4, 8), 17).train;
        (model, heads, ds)
    }

    fn cfg(from: usize, to: usize, eps: f32) -> WindowTrainConfig {
        WindowTrainConfig {
            from_atom: from,
            to_atom: to,
            epsilon: eps,
            mu: 1e-3,
            pgd_steps: 2,
            iters: 12,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 5,
            backend_threads: 0,
        }
    }

    #[test]
    fn first_module_training_reduces_loss() {
        let (mut model, mut heads, ds) = setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let c = cfg(0, 1, 8.0 / 255.0);
        let first = train_module_window(&mut model, Some(&mut heads[0]), &ds, &idx, &c);
        let later = train_module_window(
            &mut model,
            Some(&mut heads[0]),
            &ds,
            &idx,
            &WindowTrainConfig { seed: 6, ..c },
        );
        assert!(later < first, "module-1 loss {first} -> {later}");
    }

    #[test]
    fn intermediate_module_trains_without_touching_prefix() {
        let (mut model, mut heads, ds) = setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let before_prefix = model.flat_params_range(0, 1);
        let c = cfg(1, 2, 0.5);
        train_module_window(&mut model, Some(&mut heads[1]), &ds, &idx, &c);
        assert_eq!(
            model.flat_params_range(0, 1),
            before_prefix,
            "fixed modules must not change"
        );
        // The trained window must change.
        let after = model.flat_params_range(1, 2);
        let mut rng = fp_tensor::seeded_rng(0);
        let fresh = models::tiny_vgg(3, 8, 4, &[6, 8, 12], &mut rng);
        assert_ne!(after, fresh.flat_params_range(1, 2));
    }

    #[test]
    fn final_window_trains_with_backbone_classifier() {
        let (mut model, _, ds) = setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let n = model.num_atoms();
        let c = cfg(n - 1, n, 0.5);
        let first = train_module_window(&mut model, None, &ds, &idx, &c);
        let later = train_module_window(
            &mut model,
            None,
            &ds,
            &idx,
            &WindowTrainConfig { seed: 9, ..c },
        );
        assert!(later < first, "final-module loss {first} -> {later}");
    }

    #[test]
    fn max_feature_perturbation_is_positive_and_bounded() {
        let (mut model, mut heads, ds) = setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let worst = max_feature_perturbation(
            &mut model,
            &mut heads[0],
            0,
            1,
            &ds,
            &idx,
            8.0 / 255.0,
            1e-3,
            2,
            16,
            2,
            3,
        );
        assert!(worst > 0.0, "attack must move the feature");
        assert!(worst.is_finite());
    }

    #[test]
    fn zero_steps_disables_attack() {
        let (mut model, mut heads, ds) = setup();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut c = cfg(0, 1, 8.0 / 255.0);
        c.pgd_steps = 0;
        // Standard cascade training still works.
        let loss = train_module_window(&mut model, Some(&mut heads[0]), &ds, &idx, &c);
        assert!(loss.is_finite());
    }
}
