//! Two-tier hierarchical aggregation regression suite.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Single-tier equivalence.** A scheduler built through
//!    `with_topology(.., TopologyConfig::single())` reproduces the
//!    plain `with_comm` scheduler bit-for-bit — ledger JSON, final
//!    model hash, and checkpoint JSON — so every pre-topology golden
//!    stays meaningful.
//! 2. **Fleet scale.** A 100k-client lazily-materialized environment
//!    drives a two-tier async run to completion with resident client
//!    state bounded by the active dispatches: the communication-plane
//!    cache holds at most `cache_rows` rows and the checkpoint carries
//!    no O(fleet) vectors.
//! 3. **Hierarchical determinism.** Two identical two-tier runs agree
//!    exactly, and the ledger accounts every merged update to a bundle.
//! 4. **Mid-flight hierarchical checkpointing.** A checkpoint taken
//!    with edge buffers holding updates and bundles on the backhaul
//!    round-trips through JSON and resumes bit-identically.

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncScheduler, AsyncStopPoint, CommConfig,
    EventScheduler, FlConfig, FlEnv, JFat, SchedConfig, SyntheticTrainer, TopologyConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn eager_env(rounds: usize, seed: u64) -> FlEnv {
    let cfg = FlConfig::fast(rounds, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

fn fleet_env(n_clients: usize, rounds: usize, seed: u64) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    cfg.n_clients = n_clients;
    cfg.clients_per_round = 4;
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16]));
    FlEnv::lazy(data, &CIFAR_POOL, SamplingMode::Balanced, specs, cfg)
}

fn fleet_async() -> AsyncConfig {
    AsyncConfig {
        concurrency: 64,
        buffer_k: 4, // bundles, on a two-tier topology
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

fn bounded_comm() -> CommConfig {
    CommConfig {
        delta_downloads: true,
        snapshot_retention: 8,
        cache_rows: 128,
    }
}

// ------------------------------------------------- single-tier equivalence

#[test]
fn single_tier_async_is_bit_identical_to_flat() {
    let env = eager_env(5, 77);
    let acfg = AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    };
    let flat = AsyncScheduler::new(JFat::new(), acfg).run(&env);
    let single = AsyncScheduler::with_topology(
        JFat::new(),
        acfg,
        CommConfig::default(),
        TopologyConfig::single(),
    )
    .run(&env);
    assert_eq!(flat.ledger, single.ledger);
    assert_eq!(model_hash(&flat.model), model_hash(&single.model));
    // The ledger JSON is byte-identical too: the bundle fields are
    // omit-when-zero, and a flat run never sets them.
    assert_eq!(
        serde_json::to_string(&flat.ledger).unwrap(),
        serde_json::to_string(&single.ledger).unwrap()
    );
}

#[test]
fn single_tier_sync_is_bit_identical_to_flat() {
    let env = eager_env(4, 78);
    let sched = SchedConfig::default();
    let flat = EventScheduler::new(JFat::new(), sched).run(&env);
    let single = EventScheduler::with_topology(
        JFat::new(),
        sched,
        CommConfig::default(),
        TopologyConfig::single(),
    )
    .run(&env);
    assert_eq!(flat.ledger, single.ledger);
    assert_eq!(model_hash(&flat.model), model_hash(&single.model));
    assert_eq!(flat.ledger_json(), single.ledger_json());
    // Checkpoints agree byte-for-byte as well (no `topo` key on flat).
    let a =
        serde_json::to_string(&EventScheduler::new(JFat::new(), sched).run_until(&env, 2)).unwrap();
    let b = serde_json::to_string(
        &EventScheduler::with_topology(
            JFat::new(),
            sched,
            CommConfig::default(),
            TopologyConfig::single(),
        )
        .run_until(&env, 2),
    )
    .unwrap();
    assert_eq!(a, b);
    assert!(
        !a.contains("\"topo\""),
        "flat checkpoint carries no topo key"
    );
}

// ------------------------------------------------------------ fleet scale

#[test]
fn hundred_k_two_tier_run_completes_with_bounded_state() {
    let env = fleet_env(100_000, 6, 41);
    let topo = TopologyConfig::two_tier(32, 4);
    let sched =
        AsyncScheduler::with_topology(SyntheticTrainer, fleet_async(), bounded_comm(), topo);

    // Stream the ledger to a sink: nothing accumulates in the outcome.
    let mut streamed = Vec::new();
    let out = sched.run_streamed(&env, &mut |r| streamed.push(r.clone()));
    assert!(out.ledger.is_empty(), "streamed run keeps no ledger");
    assert_eq!(streamed.len(), env.cfg.rounds);
    for rec in &streamed {
        assert!(rec.merged > 0);
        assert!(rec.bundles > 0, "two-tier merges arrive as bundles");
    }
    // A bundle can flush in one inter-aggregation window and land in a
    // later one, but cumulatively nothing arrives unflushed.
    let flushes: usize = streamed.iter().map(|r| r.edge_flushes).sum();
    let bundles: usize = streamed.iter().map(|r| r.bundles).sum();
    assert!(flushes >= bundles, "{flushes} flushes < {bundles} bundles");

    // A mid-flight checkpoint bounds every resident collection: the
    // LRU'd cache at `cache_rows`, dispatch descriptors at the
    // concurrency cap, edge buffers below the flush threshold per edge.
    let ckpt = sched.run_until(&env, AsyncStopPoint::after_agg(3));
    let comm = ckpt.comm.as_ref().expect("comm plane enabled");
    assert!(
        comm.cache.len() <= bounded_comm().cache_rows,
        "cache holds {} rows, bound {}",
        comm.cache.len(),
        bounded_comm().cache_rows
    );
    assert!(ckpt.in_flight.len() <= fleet_async().concurrency);
    for (_, buf) in &ckpt.edge_buffers {
        assert!(
            buf.len() < topo.edge_flush_k,
            "edge buffers stay below the flush threshold"
        );
    }
    assert!(ckpt.dispatched_at_version.len() <= 100_000);
}

// -------------------------------------------------- hierarchical behavior

#[test]
fn two_tier_runs_are_deterministic() {
    let env = fleet_env(2_000, 5, 13);
    let topo = TopologyConfig::two_tier(8, 3);
    let mk =
        || AsyncScheduler::with_topology(SyntheticTrainer, fleet_async(), bounded_comm(), topo);
    let a = mk().run(&env);
    let b = mk().run(&env);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(model_hash(&a.model), model_hash(&b.model));
    // Every merged update arrived inside a bundle of the edge tier.
    for rec in &a.ledger {
        assert!(rec.bundles >= 1);
        assert!(rec.merged >= rec.bundles, "a bundle carries >= 1 update");
    }
}

#[test]
fn two_tier_sync_rounds_pay_the_forwarding_hop() {
    let env = eager_env(4, 21);
    let sched = SchedConfig::default();
    let flat = EventScheduler::new(JFat::new(), sched).run(&env);
    let hier = EventScheduler::with_topology(
        JFat::new(),
        sched,
        CommConfig::default(),
        TopologyConfig::two_tier(3, 2),
    )
    .run(&env);
    // Same training streams, same merges — the hierarchy only adds the
    // edge→server hop to the round clock and reports the active edges.
    assert_eq!(model_hash(&flat.model), model_hash(&hier.model));
    for (f, h) in flat.ledger.iter().zip(&hier.ledger) {
        assert!(h.edges_active >= 1);
        assert!(h.edges_active <= 3);
        assert!(
            h.round_time_s > f.round_time_s,
            "round {} must pay a forwarding hop",
            f.round
        );
    }
}

// ------------------------------------------------ hierarchical checkpoint

#[test]
fn hierarchical_checkpoint_resumes_bit_identically() {
    let env = fleet_env(2_000, 6, 99);
    let topo = TopologyConfig::two_tier(8, 3);
    let mk =
        || AsyncScheduler::with_topology(SyntheticTrainer, fleet_async(), bounded_comm(), topo);

    let full = mk().run(&env);
    let ckpt = mk().run_until(&env, AsyncStopPoint::after_agg(3));
    // Round-trip the checkpoint through JSON, including topo and any
    // edge-buffered or upstream-forwarded descriptors.
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"topo\""));
    let back: AsyncCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
    let resumed = mk().resume(&env, &back);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `topo`")]
fn resume_rejects_topology_mismatch() {
    let env = fleet_env(500, 4, 7);
    let hier = AsyncScheduler::with_topology(
        SyntheticTrainer,
        fleet_async(),
        bounded_comm(),
        TopologyConfig::two_tier(4, 2),
    );
    let ckpt = hier.run_until(&env, AsyncStopPoint::after_agg(2));
    AsyncScheduler::with_comm(SyntheticTrainer, fleet_async(), bounded_comm()).resume(&env, &ckpt);
}

// ------------------------------------------------ zero-survivor versions

#[test]
fn zero_survivor_versions_drain_partial_edges_instead_of_wedging() {
    // A client is dispatched at most once per model version, so on a
    // small fleet heavy dropout can exhaust the timeline while every
    // edge cohort sits below `edge_flush_k`: no event is pending, no
    // client is armable, and the only updates that survived the version
    // are stranded in partial edge buffers. The scheduler must drain
    // those edges and flush the partial bundles upstream — not wedge,
    // and not starve.
    let env = fleet_env(8, 4, 11);
    let acfg = AsyncConfig {
        concurrency: 8,
        buffer_k: 2,
        staleness_exp: 0.5,
        dropout_p: 0.6,
        timeout_s: Some(1e4),
        adaptive_buffer: None,
    };
    let topo = TopologyConfig::two_tier(2, 3);
    let out = AsyncScheduler::with_topology(SyntheticTrainer, acfg, bounded_comm(), topo).run(&env);
    assert_eq!(out.ledger.len(), env.cfg.rounds);
    let timed_out: usize = out.ledger.iter().map(|r| r.timed_out).sum();
    assert!(timed_out > 0, "dropout_p=0.6 must reclaim some dispatches");
    for r in &out.ledger {
        assert!(r.merged > 0, "agg {} merged nothing", r.agg);
        assert!(r.bundles > 0, "two-tier server merges bundles only");
    }
    // The drain path fired: at least one aggregation merged a partial
    // bundle (fewer than `edge_flush_k` updates per forwarded bundle),
    // which a full-buffer edge flush can never produce.
    assert!(
        out.ledger
            .iter()
            .any(|r| r.merged < r.bundles * topo.edge_flush_k),
        "no partial edge bundle was ever drained: {:?}",
        out.ledger
            .iter()
            .map(|r| (r.merged, r.bundles))
            .collect::<Vec<_>>()
    );
    // And the run stays a pure function of the seed under the drain path.
    let again =
        AsyncScheduler::with_topology(SyntheticTrainer, acfg, bounded_comm(), topo).run(&env);
    assert_eq!(out.ledger, again.ledger);
    assert_eq!(model_hash(&out.model), model_hash(&again.model));
}
