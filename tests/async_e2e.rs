//! Barrier-free async aggregation regression suite.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Golden schedule.** For a fixed seed, the exact aggregation order
//!    (merged client sets), staleness values, and virtual clock derive
//!    purely from the f64 hwsim cost model and the seeded RNG streams —
//!    machine-independent literals. The ledger and final-model hash are
//!    additionally identical at 1/2/4 worker threads.
//! 2. **Synchronous equivalence.** The degenerate async configuration
//!    (`concurrency = buffer_k = clients_per_round = n_clients`, `a = 0`)
//!    reproduces the wait-all synchronous round bit-for-bit, so the
//!    historical lockstep results stay pinned while the async path
//!    evolves.
//! 3. **Mid-flight checkpointing.** A checkpoint taken with buffered
//!    updates *and* clients still in flight round-trips through JSON and
//!    resumes bit-identically.

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncOutcome, AsyncScheduler, AsyncStopPoint,
    EventScheduler, FlConfig, FlEnv, JFat, SchedConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn env_with(rounds: usize, seed: u64, clients_per_round: Option<usize>) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    if let Some(c) = clients_per_round {
        cfg.clients_per_round = c;
    }
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

fn env(rounds: usize, seed: u64) -> FlEnv {
    env_with(rounds, seed, None)
}

/// The async policy under test: more slots than the buffer flush size, so
/// staleness actually occurs, with a moderate discount.
fn golden_async() -> AsyncConfig {
    AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

const GOLDEN_SEED: u64 = 2024;
const GOLDEN_AGGS: usize = 6;

/// Restores the hardware thread budget even if an assertion unwinds.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

fn run_golden(worker_threads: usize) -> AsyncOutcome {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(worker_threads);
    AsyncScheduler::new(JFat::new(), golden_async()).run(&env(GOLDEN_AGGS, GOLDEN_SEED))
}

/// Golden aggregation schedule for seed 2024: per aggregation the merged
/// clients (merge order) and their maximum staleness. Pure cost-model
/// arithmetic — machine-independent.
fn golden_schedule() -> Vec<(Vec<usize>, usize)> {
    GOLDEN_CLIENTS
        .iter()
        .zip(GOLDEN_MAX_STALENESS)
        .map(|(c, s)| (c.to_vec(), s))
        .collect()
}

const GOLDEN_CLIENTS: [[usize; 2]; GOLDEN_AGGS] = [[2, 5], [3, 4], [2, 5], [0, 4], [3, 4], [0, 4]];
const GOLDEN_MAX_STALENESS: [usize; GOLDEN_AGGS] = [0, 1, 1, 1, 1, 1];

/// Golden virtual aggregation times (seconds) for seed 2024, written at
/// full precision so the 1e-12 relative comparison round-trips exactly.
#[allow(clippy::excessive_precision)]
const GOLDEN_AGG_TIMES: [f64; GOLDEN_AGGS] = [
    2.76094070514935108e-5,
    6.63743978478287358e-5,
    9.11001780927370419e-5,
    1.24308810434001216e-4,
    1.78059949286476572e-4,
    2.15193649034645985e-4,
];

#[test]
fn async_golden_run_is_thread_count_invariant() {
    let a = run_golden(1);
    let b = run_golden(2);
    let c = run_golden(4);

    // Bit-identical ledger and final model at every worker budget.
    assert_eq!(a.ledger, b.ledger, "1 vs 2 workers");
    assert_eq!(a.ledger, c.ledger, "1 vs 4 workers");
    let h = model_hash(&a.model);
    assert_eq!(h, model_hash(&b.model), "final-model hash, 1 vs 2 workers");
    assert_eq!(h, model_hash(&c.model), "final-model hash, 1 vs 4 workers");

    // The golden aggregation order and staleness.
    let schedule: Vec<(Vec<usize>, usize)> = a
        .ledger
        .iter()
        .map(|r| (r.clients.clone(), r.max_staleness))
        .collect();
    assert_eq!(schedule, golden_schedule(), "golden aggregation schedule");

    // The golden virtual timeline.
    for (r, want) in a.ledger.iter().zip(GOLDEN_AGG_TIMES) {
        assert!(
            ((r.clock_s - want) / want).abs() < 1e-12,
            "agg {} clock {:.17e} vs golden {want:.17e}",
            r.agg,
            r.clock_s
        );
    }

    // Structural invariants of every ledger row.
    for (i, r) in a.ledger.iter().enumerate() {
        assert_eq!(r.agg, i);
        assert_eq!(r.merged, golden_async().buffer_k);
        assert_eq!(r.clients.len(), r.merged);
        assert!(r.round_time_s > 0.0);
        assert!(r.clock_s > 0.0);
        assert!(r.train_loss.is_finite());
        assert!(r.mean_staleness >= 0.0);
        assert!((0.0..=1.0 + 1e-6).contains(&r.weight_retained));
        assert!(r.mean_transfer_s > 0.0, "dispatches carry transfer cost");
        if r.max_staleness > 0 {
            assert!(
                r.weight_retained < 1.0,
                "stale merges must lose FedAvg mass at a > 0"
            );
        }
    }
    // With 4 slots and flushes of 2, some merges must be stale.
    assert!(a.ledger.iter().any(|r| r.max_staleness > 0));

    // Re-running the same seed reproduces the hash; a different seed
    // diverges.
    assert_eq!(model_hash(&run_golden(1).model), h);
    let other = AsyncScheduler::new(JFat::new(), golden_async()).run(&env(GOLDEN_AGGS, 7));
    assert_ne!(model_hash(&other.model), h);

    // Emit the ledger as a JSON artifact for CI.
    if let Ok(path) = std::env::var("FP_ASYNC_METRICS") {
        std::fs::write(path, a.ledger_json()).expect("write metrics artifact");
    }
}

#[test]
fn degenerate_async_config_is_bitwise_synchronous() {
    // concurrency = buffer_k = clients_per_round = n_clients and a = 0:
    // the async loop must reproduce the wait-all synchronous rounds
    // bit-for-bit — same merges, same losses, same validation, same
    // virtual clock, same final model.
    let seed = 99;
    let rounds = 3;
    let n = 8;
    let sync_env = env_with(rounds, seed, Some(n));
    let sync = EventScheduler::new(JFat::new(), SchedConfig::default()).run(&sync_env);
    let async_out = AsyncScheduler::new(JFat::new(), AsyncConfig::synchronous(n)).run(&sync_env);

    assert_eq!(
        model_hash(&sync.model),
        model_hash(&async_out.model),
        "final models must be bit-identical"
    );
    assert_eq!(sync.ledger.len(), async_out.ledger.len());
    for (s, a) in sync.ledger.iter().zip(&async_out.ledger) {
        assert_eq!(a.agg, s.round);
        assert_eq!(a.merged, s.completed);
        assert_eq!(a.clients, (0..n).collect::<Vec<_>>());
        assert_eq!(a.train_loss, s.train_loss, "round {} loss", s.round);
        assert_eq!(a.val_clean, s.val_clean, "round {} val_clean", s.round);
        assert_eq!(a.val_adv, s.val_adv, "round {} val_adv", s.round);
        assert_eq!(a.participation_weight, s.participation_weight);
        assert_eq!(a.clock_s, s.clock_s, "round {} clock", s.round);
        // round_time is stored as a clock difference on the async side;
        // identical up to one f64 rounding of the subtraction.
        assert!(
            ((a.round_time_s - s.round_time_s) / s.round_time_s).abs() < 1e-12,
            "round {} time {:.17e} vs {:.17e}",
            s.round,
            a.round_time_s,
            s.round_time_s
        );
        assert_eq!(a.mean_staleness, 0.0, "no merge can be stale");
        assert_eq!(a.max_staleness, 0);
        assert_eq!(a.weight_retained, 1.0, "a = 0 keeps full FedAvg mass");
    }
}

#[test]
fn async_checkpoint_resumes_bit_identically_with_in_flight_clients() {
    let e = env(5, 77);
    let sched = AsyncScheduler::new(JFat::new(), golden_async());
    let full = sched.run(&e);

    // Interrupt after 2 aggregations plus one buffered update — so the
    // checkpoint carries both a non-empty buffer and in-flight clients —
    // round-trip it through JSON, resume to completion.
    let ckpt = sched.run_until(
        &e,
        AsyncStopPoint {
            aggregations: 2,
            buffered: 1,
        },
    );
    assert_eq!(ckpt.version, 2);
    assert_eq!(ckpt.ledger.len(), 2);
    assert_eq!(ckpt.buffer.len(), 1, "one update waits in the buffer");
    assert!(
        !ckpt.in_flight.is_empty(),
        "clients must be mid-training at the checkpoint"
    );
    for d in ckpt.buffer.iter().chain(&ckpt.in_flight) {
        assert!(d.finish_s >= d.dispatch_s);
        assert!(d.version <= ckpt.version);
        assert!(d.transfer_s > 0.0);
    }
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    let restored: AsyncCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = sched.resume(&e, &restored);

    assert_eq!(resumed.ledger.len(), full.ledger.len());
    assert_eq!(&resumed.ledger[..2], &full.ledger[..2], "prefix agrees");
    assert_eq!(
        &resumed.ledger[2..],
        &full.ledger[2..],
        "aggregations after the checkpoint must be bit-identical"
    );
    assert_eq!(
        model_hash(&resumed.model),
        model_hash(&full.model),
        "final model must be bit-identical after resume"
    );
    assert!((resumed.virtual_time_s() - full.virtual_time_s()).abs() < 1e-15);
}

#[test]
#[should_panic(expected = "different master seed")]
fn async_resume_rejects_mismatched_seed() {
    let e = env(3, 5);
    let sched = AsyncScheduler::new(JFat::new(), golden_async());
    let ckpt = sched.run_until(&e, AsyncStopPoint::after_agg(1));
    let other = env(3, 6);
    let _ = sched.resume(&other, &ckpt);
}

#[test]
#[should_panic(expected = "different async policy")]
fn async_resume_rejects_mismatched_policy() {
    let e = env(3, 5);
    let ckpt = AsyncScheduler::new(JFat::new(), golden_async())
        .run_until(&e, AsyncStopPoint::after_agg(1));
    let _ = AsyncScheduler::new(JFat::new(), AsyncConfig::synchronous(8)).resume(&e, &ckpt);
}

#[test]
#[should_panic(expected = "different algorithm")]
fn async_resume_rejects_mismatched_algorithm() {
    let e = env(3, 5);
    let ckpt = AsyncScheduler::new(JFat::new(), golden_async())
        .run_until(&e, AsyncStopPoint::after_agg(1));
    let _ =
        AsyncScheduler::new(fedprophet_repro::fl::FedRbn::new(), golden_async()).resume(&e, &ckpt);
}

#[test]
fn async_beats_wait_all_to_equal_aggregation_count() {
    // The headline property: the same number of aggregations costs far
    // less virtual wall-clock without the barrier, because the clock
    // never waits for the slowest dispatch.
    let e = env(4, 33);
    let sync = EventScheduler::new(JFat::new(), SchedConfig::default()).run(&e);
    let async_out = AsyncScheduler::new(JFat::new(), golden_async()).run(&e);
    assert_eq!(sync.ledger.len(), async_out.ledger.len());
    assert!(
        async_out.virtual_time_s() < sync.virtual_time_s(),
        "async clock {} must beat the barrier clock {}",
        async_out.virtual_time_s(),
        sync.virtual_time_s()
    );
}
