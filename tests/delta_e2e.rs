//! Communication-plane regression suite: delta-encoded, cache-aware
//! downloads.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Exactness.** Delta downloads are a pure *costing* optimization —
//!    they reconstruct the payload bit-for-bit — so a delta-enabled run
//!    produces the **identical final model hash** to a full-payload run
//!    whenever the merge sets are latency-independent (wait-all
//!    barriers), while strictly reducing cumulative down-link bytes.
//! 2. **Checkpointing.** Both schedulers' checkpoints carry the cache
//!    table + retained snapshots and resume bit-identically with deltas
//!    enabled; a checkpoint taken under a different communication-plane
//!    policy is rejected by name.
//! 3. **Async dropout/timeouts.** Per-dispatch dropout with the
//!    server-side timeout reclaims slots deterministically (the ledger
//!    counts the reclaims), stays thread-count invariant, and resumes
//!    mid-flight with lost dispatches outstanding.
//! 4. **Adaptive buffer.** The staleness-scaled flush threshold stays in
//!    bounds, is recorded per aggregation, and is off by default.

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncOutcome, AsyncScheduler, AsyncStopPoint,
    CommConfig, EventScheduler, FlConfig, FlEnv, PartialTraining, SchedConfig, SchedOutcome,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn env_with(rounds: usize, seed: u64, clients_per_round: usize) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    cfg.clients_per_round = clients_per_round;
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

fn delta_comm() -> CommConfig {
    CommConfig {
        delta_downloads: true,
        snapshot_retention: 6,
        ..CommConfig::default()
    }
}

/// Small cohorts are what make HeteroFL deltas sparse: a round's merge
/// only touches the participants' width slices, so a wide client
/// re-selected later downloads just the channels the interim (narrower)
/// cohorts actually changed.
fn delta_sched() -> SchedConfig {
    SchedConfig {
        dropout_p: 0.15,
        ..SchedConfig::default()
    }
}

const DELTA_SEED: u64 = 2025;
const DELTA_ROUNDS: usize = 10;

fn run_sync(comm: Option<CommConfig>) -> SchedOutcome {
    let e = env_with(DELTA_ROUNDS, DELTA_SEED, 3);
    let alg = PartialTraining::heterofl();
    match comm {
        None => EventScheduler::new(alg, delta_sched()).run(&e),
        Some(c) => EventScheduler::with_comm(alg, delta_sched(), c).run(&e),
    }
}

#[test]
fn delta_downloads_preserve_the_model_and_cut_bytes() {
    let full = run_sync(None);
    let delta = run_sync(Some(delta_comm()));

    // Payload encoding must not touch the training math: under the
    // wait-all barrier the merge sets are latency-independent, so the
    // final models are bit-identical.
    assert_eq!(
        model_hash(&full.model),
        model_hash(&delta.model),
        "delta downloads must reconstruct payloads bit-for-bit"
    );
    assert_eq!(full.ledger.len(), delta.ledger.len());
    for (f, d) in full.ledger.iter().zip(&delta.ledger) {
        assert_eq!(f.completed, d.completed, "round {}", f.round);
        assert_eq!(f.dropped_out, d.dropped_out, "round {}", f.round);
        assert_eq!(f.train_loss, d.train_loss, "round {}", f.round);
        assert_eq!(f.val_clean, d.val_clean, "round {}", f.round);
        assert_eq!(f.val_adv, d.val_adv, "round {}", f.round);
        // The dense update upload is unchanged; only downloads compress.
        assert_eq!(f.up_bytes, d.up_bytes, "round {}", f.round);
        assert!(d.down_bytes <= f.down_bytes, "round {}", f.round);
        assert_eq!(f.delta_dispatches, 0, "full-payload run never deltas");
        // Transfer relief can only shorten rounds, never lengthen them.
        assert!(
            d.round_time_s <= f.round_time_s + 1e-18,
            "round {}: {} vs {}",
            f.round,
            d.round_time_s,
            f.round_time_s
        );
    }
    let full_down: u64 = full.ledger.iter().map(|r| r.down_bytes).sum();
    let delta_down: u64 = delta.ledger.iter().map(|r| r.down_bytes).sum();
    let delta_count: usize = delta.ledger.iter().map(|r| r.delta_dispatches).sum();
    assert!(delta_count > 0, "the cache must produce delta dispatches");
    assert!(
        delta_down < full_down,
        "delta run must move strictly fewer down-link bytes: {delta_down} vs {full_down}"
    );
    assert!(delta.virtual_time_s() <= full.virtual_time_s());
}

#[test]
fn delta_runs_are_deterministic_and_resume_bit_identically() {
    let e = env_with(DELTA_ROUNDS, DELTA_SEED, 3);
    let sched = EventScheduler::with_comm(PartialTraining::heterofl(), delta_sched(), delta_comm());
    let a = sched.run(&e);
    let b = sched.run(&e);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(model_hash(&a.model), model_hash(&b.model));

    // Mid-run checkpoint: the comm state (cache table + snapshots) rides
    // along and the continuation is bit-identical.
    let ckpt = sched.run_until(&e, 4);
    assert!(ckpt.comm.is_some(), "enabled comm plane must checkpoint");
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    assert!(json.contains("\"comm\""));
    let restored: fedprophet_repro::fl::SchedCheckpoint<fedprophet_repro::fl::ModelState> =
        serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = sched.resume(&e, &restored);
    assert_eq!(resumed.ledger, a.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&a.model));
}

#[test]
#[should_panic(expected = "communication-plane policy")]
fn resume_rejects_mismatched_comm_policy() {
    let e = env_with(4, 5, 3);
    let with = EventScheduler::with_comm(PartialTraining::heterofl(), delta_sched(), delta_comm());
    let ckpt = with.run_until(&e, 2);
    let without = EventScheduler::new(PartialTraining::heterofl(), delta_sched());
    let _ = without.resume(&e, &ckpt);
}

#[test]
fn disabled_comm_resumes_regardless_of_inert_retention_knob() {
    // A disabled plane checkpoints as `None`; the retention knob is
    // inert, so a non-default value must not be mistaken for a policy
    // change on resume.
    let e = env_with(4, 5, 3);
    let sched = EventScheduler::with_comm(
        PartialTraining::heterofl(),
        delta_sched(),
        CommConfig {
            delta_downloads: false,
            snapshot_retention: 9,
            ..CommConfig::default()
        },
    );
    let full = sched.run(&e);
    let ckpt = sched.run_until(&e, 2);
    assert!(ckpt.comm.is_none(), "disabled plane stores no comm state");
    let resumed = sched.resume(&e, &ckpt);
    assert_eq!(resumed.ledger, full.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&full.model));
}

// ------------------------------------------------------------------ async

fn async_delta_cfg() -> AsyncConfig {
    AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

fn run_async_delta(worker_threads: usize) -> AsyncOutcome {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            fedprophet_repro::tensor::parallel::set_thread_budget(0);
        }
    }
    let _guard = Guard;
    fedprophet_repro::tensor::parallel::set_thread_budget(worker_threads);
    let e = env_with(6, 77, 6);
    AsyncScheduler::with_comm(PartialTraining::heterofl(), async_delta_cfg(), delta_comm()).run(&e)
}

#[test]
fn async_delta_run_is_thread_invariant_and_compresses_downloads() {
    let a = run_async_delta(1);
    let b = run_async_delta(2);
    let c = run_async_delta(4);
    assert_eq!(a.ledger, b.ledger, "1 vs 2 workers");
    assert_eq!(a.ledger, c.ledger, "1 vs 4 workers");
    let h = model_hash(&a.model);
    assert_eq!(h, model_hash(&b.model));
    assert_eq!(h, model_hash(&c.model));

    let delta_merged: usize = a.ledger.iter().map(|r| r.delta_merged).sum();
    let down: u64 = a.ledger.iter().map(|r| r.down_bytes).sum();
    let up: u64 = a.ledger.iter().map(|r| r.up_bytes).sum();
    assert!(
        delta_merged > 0,
        "async flushes must merge delta dispatches"
    );
    assert!(
        down < up,
        "compressed downloads must undercut the dense uploads: {down} vs {up}"
    );
    for r in &a.ledger {
        assert!(r.down_bytes > 0 && r.up_bytes > 0);
        assert!(r.delta_merged <= r.merged);
        assert_eq!(r.flush_k, None, "static buffer records no flush_k");
    }
}

#[test]
fn async_delta_checkpoint_resumes_bit_identically() {
    let e = env_with(5, 77, 6);
    let sched =
        AsyncScheduler::with_comm(PartialTraining::heterofl(), async_delta_cfg(), delta_comm());
    let full = sched.run(&e);
    let ckpt = sched.run_until(
        &e,
        AsyncStopPoint {
            aggregations: 2,
            buffered: 1,
        },
    );
    assert!(ckpt.comm.is_some());
    let json = serde_json::to_string(&ckpt).expect("serializes");
    let restored: AsyncCheckpoint = serde_json::from_str(&json).expect("deserializes");
    let resumed = sched.resume(&e, &restored);
    assert_eq!(resumed.ledger, full.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&full.model));
}

// -------------------------------------------------- dropout / timeout

fn dropout_cfg() -> AsyncConfig {
    AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        dropout_p: 0.25,
        // Generous virtual timeout: only true dropouts are reclaimed, so
        // the reclaim count is exactly the number of dropped dispatches.
        timeout_s: Some(60.0),
        ..AsyncConfig::default()
    }
}

fn run_async_dropout(worker_threads: usize) -> AsyncOutcome {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            fedprophet_repro::tensor::parallel::set_thread_budget(0);
        }
    }
    let _guard = Guard;
    fedprophet_repro::tensor::parallel::set_thread_budget(worker_threads);
    let e = env_with(6, 41, 6);
    AsyncScheduler::new(fedprophet_repro::fl::JFat::new(), dropout_cfg()).run(&e)
}

#[test]
fn async_dropout_reclaims_slots_deterministically() {
    let a = run_async_dropout(1);
    let b = run_async_dropout(4);
    assert_eq!(a.ledger, b.ledger, "dropout draws are thread-invariant");
    assert_eq!(model_hash(&a.model), model_hash(&b.model));
    assert_eq!(a.ledger.len(), 6, "the run completes despite dropouts");
    let reclaimed: usize = a.ledger.iter().map(|r| r.timed_out).sum();
    assert!(
        reclaimed > 0,
        "dropout_p = 0.25 over 6 aggregations must lose dispatches"
    );
    // Every flush still merges exactly buffer_k delivered updates.
    for r in &a.ledger {
        assert_eq!(r.merged, 2);
        assert!(r.round_time_s > 0.0);
    }
}

#[test]
fn async_dropout_checkpoint_resumes_with_lost_dispatches_in_flight() {
    let e = env_with(5, 41, 6);
    let sched = AsyncScheduler::new(fedprophet_repro::fl::JFat::new(), dropout_cfg());
    let full = sched.run(&e);
    let ckpt = sched.run_until(
        &e,
        AsyncStopPoint {
            aggregations: 1,
            buffered: 1,
        },
    );
    let json = serde_json::to_string(&ckpt).expect("serializes");
    let restored: AsyncCheckpoint = serde_json::from_str(&json).expect("deserializes");
    let resumed = sched.resume(&e, &restored);
    assert_eq!(resumed.ledger, full.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&full.model));
}

// ------------------------------------------------------ adaptive buffer

#[test]
fn adaptive_buffer_scales_with_staleness_within_bounds() {
    let e = env_with(6, 13, 6);
    let acfg = AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        adaptive_buffer: Some((1, 4)),
        ..AsyncConfig::default()
    };
    let sched = AsyncScheduler::new(fedprophet_repro::fl::JFat::new(), acfg);
    let a = sched.run(&e);
    let b = sched.run(&e);
    assert_eq!(a.ledger, b.ledger, "adaptive runs stay deterministic");
    for r in &a.ledger {
        let k = r.flush_k.expect("adaptive runs record the threshold");
        assert!(
            (1..=4).contains(&k),
            "agg {}: flush_k {k} out of bounds",
            r.agg
        );
        assert_eq!(r.merged, k, "the flush fires exactly at the threshold");
    }
    assert!(
        a.ledger.iter().any(|r| r.flush_k != Some(2)),
        "observed staleness must move the threshold at least once"
    );

    // Mid-flight resume carries the live threshold.
    let ckpt = sched.run_until(&e, AsyncStopPoint::after_agg(3));
    assert!(ckpt.cur_k.is_some());
    let json = serde_json::to_string(&ckpt).expect("serializes");
    let restored: AsyncCheckpoint = serde_json::from_str(&json).expect("deserializes");
    let resumed = sched.resume(&e, &restored);
    assert_eq!(resumed.ledger, a.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&a.model));
}
