//! Byzantine-client plane regression suite.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Honest equivalence.** A `ByzTrainer` under `RobustRule::FedAvg`
//!    with no (effective) attackers reproduces the unwrapped trainer
//!    bit-for-bit — ledger JSON, final model hash, and checkpoint JSON
//!    (no `byz` key) — for both schedulers, so every pre-Byzantine
//!    golden stays meaningful.
//! 2. **Pinned filtering.** Under a seeded attack plan, each robust rule
//!    filters an exact, pinned set of clients per merge — recorded in
//!    the ledger with reasons, bit-identical at 1/2/4 worker threads.
//! 3. **Defense effectiveness.** A sign-flip attack drags the plain
//!    FedAvg model far from the honest trajectory; multi-Krum keeps it
//!    close by filtering the flagged clients.
//! 4. **Policy-carrying checkpoints.** Checkpoints serialize the rule +
//!    plan under the `byz` key, round-trip through JSON, resume
//!    bit-identically, and refuse to resume under a different policy
//!    with a field-named panic.

use std::io::Write as _;

use fedprophet_repro::data::{generate, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncScheduler, AsyncStopPoint, AttackKind,
    AttackPlan, ByzTrainer, EventScheduler, FlConfig, FlEnv, RobustRule, SchedConfig,
    SyntheticTrainer,
};
use fedprophet_repro::hwsim::{SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

const BYZ_SEED: u64 = 91;
const BYZ_ROUNDS: usize = 3;

fn byz_env(n_clients: usize, rounds: usize, seed: u64) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    cfg.n_clients = n_clients;
    cfg.clients_per_round = 8.min(n_clients);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16]));
    FlEnv::lazy(data, &CIFAR_POOL, SamplingMode::Balanced, specs, cfg)
}

/// The seeded hostile plan every attack test runs under: ~30% of the
/// fleet flips its update about the dispatched parameters, amplified 4×.
fn sign_flip_plan() -> AttackPlan {
    AttackPlan {
        fraction: 0.3,
        salt: 7,
        kind: AttackKind::SignFlip { scale: 4.0 },
    }
}

fn krum_rule() -> RobustRule {
    RobustRule::MultiKrum {
        f: 2,
        m: 5,
        clip: 1.05,
    }
}

fn async_cfg() -> AsyncConfig {
    AsyncConfig {
        concurrency: 8,
        buffer_k: 4,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

// --------------------------------------------------- honest equivalence

#[test]
fn fedavg_with_zero_attackers_is_bit_identical_to_honest_sync() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let sched = SchedConfig::default();
    let honest = EventScheduler::new(SyntheticTrainer, sched).run(&env);
    // Both the rule-only wrapper and an explicit zero-fraction plan are
    // trivial policies: they must not perturb a single byte.
    for plan in [
        None,
        Some(AttackPlan {
            fraction: 0.0,
            ..sign_flip_plan()
        }),
    ] {
        let wrapped = EventScheduler::new(
            ByzTrainer::new(SyntheticTrainer, RobustRule::FedAvg, plan),
            sched,
        )
        .run(&env);
        assert_eq!(honest.ledger, wrapped.ledger);
        assert_eq!(honest.ledger_json(), wrapped.ledger_json());
        assert_eq!(model_hash(&honest.model), model_hash(&wrapped.model));
    }
    // Checkpoints agree byte-for-byte as well: a trivial policy writes
    // no `byz` key, and an honest merge writes no `filtered` field.
    let a = serde_json::to_string(&EventScheduler::new(SyntheticTrainer, sched).run_until(&env, 2))
        .unwrap();
    let b = serde_json::to_string(
        &EventScheduler::new(
            ByzTrainer::new(SyntheticTrainer, RobustRule::FedAvg, None),
            sched,
        )
        .run_until(&env, 2),
    )
    .unwrap();
    assert_eq!(a, b);
    assert!(!a.contains("\"byz\""), "trivial policy writes no byz key");
    assert!(!a.contains("\"filtered\""));
}

#[test]
fn fedavg_with_zero_attackers_is_bit_identical_to_honest_async() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let honest = AsyncScheduler::new(SyntheticTrainer, async_cfg()).run(&env);
    let wrapped = AsyncScheduler::new(
        ByzTrainer::new(SyntheticTrainer, RobustRule::FedAvg, None),
        async_cfg(),
    )
    .run(&env);
    assert_eq!(honest.ledger, wrapped.ledger);
    assert_eq!(honest.ledger_json(), wrapped.ledger_json());
    assert_eq!(model_hash(&honest.model), model_hash(&wrapped.model));
    let a = serde_json::to_string(
        &AsyncScheduler::new(SyntheticTrainer, async_cfg())
            .run_until(&env, AsyncStopPoint::after_agg(2)),
    )
    .unwrap();
    let b = serde_json::to_string(
        &AsyncScheduler::new(
            ByzTrainer::new(SyntheticTrainer, RobustRule::FedAvg, None),
            async_cfg(),
        )
        .run_until(&env, AsyncStopPoint::after_agg(2)),
    )
    .unwrap();
    assert_eq!(a, b);
    assert!(!a.contains("\"byz\""), "trivial policy writes no byz key");
}

// ------------------------------------------------------ pinned filtering

/// Resets the global worker budget when a test panics mid-run.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

/// The golden filtered-client schedule under [`sign_flip_plan`] on the
/// seed-91 fleet, where the plan flags clients {1, 14, 25, 26, 28, 29}:
/// `(round, client, reason)` plus the per-round norm-clip count.
///
/// Multi-Krum (f=2, m=5) drops three of eight survivors per round — the
/// attackers present plus the honest stragglers of the score ordering —
/// and clips exactly the attackers (norm inflated by the ×4 sign flip).
const KRUM_FILTERED: &[(usize, usize, &str)] = &[
    (0, 20, "krum"),
    (0, 28, "krum"),
    (0, 29, "krum"),
    (1, 14, "krum"),
    (1, 15, "krum"),
    (1, 28, "krum"),
    (2, 14, "krum"),
    (2, 23, "krum"),
    (2, 27, "krum"),
];
const KRUM_CLIPPED: &[usize] = &[2, 2, 1];

/// Coordinate-wise trimmed mean (trim=0.25) filters exactly the
/// attackers that survived each round — no honest client is majority-
/// trimmed — and never norm-clips.
const TRIM_FILTERED: &[(usize, usize, &str)] = &[
    (0, 28, "trimmed"),
    (0, 29, "trimmed"),
    (1, 14, "trimmed"),
    (1, 28, "trimmed"),
    (2, 14, "trimmed"),
];

/// One attacked run's evidence: ledger JSON, the `(round, client,
/// reason)` filtering schedule, and the per-round clip counts.
type Evidence = (String, Vec<(usize, usize, &'static str)>, Vec<usize>);

fn filtered_schedule(rule: RobustRule, worker_threads: usize) -> Evidence {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(worker_threads);
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let out = EventScheduler::new(
        ByzTrainer::new(SyntheticTrainer, rule, Some(sign_flip_plan())),
        SchedConfig::default(),
    )
    .run(&env);
    let mut schedule = Vec::new();
    let mut clipped = Vec::new();
    for r in &out.ledger {
        schedule.extend(
            r.filtered
                .iter()
                .map(|f| (r.round, f.client, f.reason.as_str())),
        );
        clipped.push(r.clip_applied);
    }
    (out.ledger_json(), schedule, clipped)
}

#[test]
fn robust_rules_filter_a_pinned_client_set_at_any_worker_count() {
    let attackers = sign_flip_plan().attackers(BYZ_SEED, 32);
    assert_eq!(attackers, vec![1, 14, 25, 26, 28, 29]);

    let (krum_json, krum, krum_clips) = filtered_schedule(krum_rule(), 1);
    assert_eq!(krum, KRUM_FILTERED);
    assert_eq!(krum_clips, KRUM_CLIPPED);
    let (trim_json, trim, trim_clips) =
        filtered_schedule(RobustRule::TrimmedMean { trim: 0.25 }, 1);
    assert_eq!(trim, TRIM_FILTERED);
    assert_eq!(trim_clips, vec![0, 0, 0]);
    // The trimmed-mean rule filtered *only* attackers; Krum filtered
    // every attacker present plus pinned honest stragglers.
    for (_, client, _) in TRIM_FILTERED {
        assert!(attackers.contains(client));
    }
    for round in 0..BYZ_ROUNDS {
        let in_round: Vec<usize> = KRUM_FILTERED
            .iter()
            .filter(|(r, _, _)| *r == round)
            .map(|(_, c, _)| *c)
            .collect();
        assert!(in_round.iter().any(|c| attackers.contains(c)));
    }

    // Worker-thread budget must not move a single ledger byte.
    for workers in [2, 4] {
        let (json, _, _) = filtered_schedule(krum_rule(), workers);
        assert_eq!(krum_json, json, "krum ledger drifted at {workers} workers");
        let (json, _, _) = filtered_schedule(RobustRule::TrimmedMean { trim: 0.25 }, workers);
        assert_eq!(trim_json, json, "trim ledger drifted at {workers} workers");
    }

    // CI publishes the filtered-client ledger as a build artifact.
    if let Ok(path) = std::env::var("FP_BYZ_LEDGER_JSONL") {
        let mut f = std::fs::File::create(&path).expect("create byz ledger artifact");
        for (label, json) in [("multi_krum", &krum_json), ("trimmed_mean", &trim_json)] {
            writeln!(f, "{{\"rule\":\"{label}\",\"ledger\":{json}}}")
                .expect("write byz ledger artifact");
        }
    }
}

#[test]
fn async_robust_rule_applies_to_staleness_discounted_flushes() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let run = |rule| {
        AsyncScheduler::new(
            ByzTrainer::new(SyntheticTrainer, rule, Some(sign_flip_plan())),
            async_cfg(),
        )
        .run(&env)
    };
    let krum = run(krum_rule());
    // Every aggregation recorded against the same staleness-weighted
    // buffer contents: the rule sees buffer_k=4 updates per flush, and
    // with f=2, m=5 > n=4 the degenerate guard passes everyone through
    // (clipping still applies), so no async flush reports filtering.
    assert!(!krum.ledger.is_empty());
    assert!(krum.ledger.iter().all(|r| r.filtered.is_empty()));
    let trim = run(RobustRule::TrimmedMean { trim: 0.25 });
    assert!(!trim.ledger.is_empty());
    // trim=0.25 on a 4-update buffer trims g=1 coordinate per side, so
    // half of every buffer is trimmed per coordinate and the majority
    // flag fires on honest outliers too — the pinned `(agg, client)`
    // schedule documents exactly that (client 25 is the only flagged
    // attacker that reached a buffer here).
    let filtered: Vec<(usize, usize)> = trim
        .ledger
        .iter()
        .flat_map(|r| r.filtered.iter().map(|f| (r.agg, f.client)))
        .collect();
    assert_eq!(
        filtered,
        vec![(0, 4), (0, 22), (0, 27), (1, 5), (1, 25), (2, 15), (2, 16)]
    );
    // And the two defended models diverge from each other deterministically.
    assert_ne!(model_hash(&krum.model), model_hash(&trim.model));
}

// ------------------------------------------------- defense effectiveness

#[test]
fn multi_krum_holds_the_model_near_the_honest_trajectory() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let sched = SchedConfig::default();
    let honest = EventScheduler::new(SyntheticTrainer, sched)
        .run(&env)
        .model
        .flat_params();
    let attacked = |rule| {
        EventScheduler::new(
            ByzTrainer::new(SyntheticTrainer, rule, Some(sign_flip_plan())),
            sched,
        )
        .run(&env)
        .model
        .flat_params()
    };
    let fedavg_dist = l2(&attacked(RobustRule::FedAvg), &honest);
    let krum_dist = l2(&attacked(krum_rule()), &honest);
    assert!(
        krum_dist < fedavg_dist / 2.0,
        "multi-Krum ({krum_dist:.6}) should at least halve the FedAvg \
         drift under attack ({fedavg_dist:.6})"
    );
}

// ----------------------------------------- policy-carrying checkpoints

#[test]
fn sync_checkpoint_carries_policy_and_resumes_bit_identically() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let sched = SchedConfig::default();
    let trainer = || {
        ByzTrainer::new(
            SyntheticTrainer,
            RobustRule::TrimmedMean { trim: 0.25 },
            Some(sign_flip_plan()),
        )
    };
    let full = EventScheduler::new(trainer(), sched).run(&env);
    let ckpt = EventScheduler::new(trainer(), sched).run_until(&env, 2);
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"byz\""), "checkpoint must carry the policy");
    assert!(json.contains("\"trimmed_mean\""));
    assert!(json.contains("\"sign_flip\""));
    let restored: fedprophet_repro::fl::SchedCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = EventScheduler::new(trainer(), sched).resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
fn async_checkpoint_carries_policy_and_resumes_bit_identically() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let trainer = || ByzTrainer::new(SyntheticTrainer, krum_rule(), Some(sign_flip_plan()));
    let full = AsyncScheduler::new(trainer(), async_cfg()).run(&env);
    let ckpt =
        AsyncScheduler::new(trainer(), async_cfg()).run_until(&env, AsyncStopPoint::after_agg(2));
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"byz\""), "checkpoint must carry the policy");
    assert!(json.contains("\"multi_krum\""));
    let restored: AsyncCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = AsyncScheduler::new(trainer(), async_cfg()).resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
#[should_panic(expected = "SchedCheckpoint field `byz`")]
fn sync_resume_rejects_a_different_byzantine_policy() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let sched = SchedConfig::default();
    let ckpt = EventScheduler::new(
        ByzTrainer::new(SyntheticTrainer, krum_rule(), Some(sign_flip_plan())),
        sched,
    )
    .run_until(&env, 2);
    EventScheduler::new(
        ByzTrainer::new(SyntheticTrainer, RobustRule::FedAvg, None),
        sched,
    )
    .resume(&env, &ckpt);
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `byz`")]
fn async_resume_rejects_a_different_byzantine_policy() {
    let env = byz_env(32, BYZ_ROUNDS, BYZ_SEED);
    let ckpt = AsyncScheduler::new(
        ByzTrainer::new(SyntheticTrainer, krum_rule(), Some(sign_flip_plan())),
        async_cfg(),
    )
    .run_until(&env, AsyncStopPoint::after_agg(2));
    AsyncScheduler::new(
        ByzTrainer::new(
            SyntheticTrainer,
            RobustRule::TrimmedMean { trim: 0.25 },
            None,
        ),
        async_cfg(),
    )
    .resume(&env, &ckpt);
}
