//! Cross-crate integration tests: the full FedProphet pipeline against its
//! baselines on a shared environment.

use fedprophet_repro::attack::{evaluate_robustness, ApgdConfig, PgdConfig};
use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fedprophet::{FedProphet, ProphetConfig};
use fedprophet_repro::fl::{
    model_hash, DeadlinePolicy, EventScheduler, FlAlgorithm, FlConfig, FlEnv, JFat,
    PartialTraining, SchedCheckpoint, SchedConfig, SchedOutcome,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn env(rounds: usize, seed: u64) -> FlEnv {
    let cfg = FlConfig::fast(rounds, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

#[test]
fn fedprophet_full_pipeline_learns_robustly() {
    let env = env(20, 99);
    let outcome = FedProphet::new(ProphetConfig::default()).run_detailed(&env);

    // Memory claim: every module fits the minimum budget (modulo the
    // single-atom exception), and the largest module is well under the
    // full model.
    assert!(outcome.partition.num_modules() >= 2);
    assert!(
        outcome.partition.max_module_mem() < env.full_mem_req(),
        "cascade must reduce peak memory"
    );

    // Robustness: the trained model beats an untrained one under attack.
    let mut model = outcome.model;
    let report = evaluate_robustness(
        &mut model,
        &env.data.test,
        &PgdConfig::fast(env.cfg.eps0),
        &ApgdConfig::fast(env.cfg.eps0),
        32,
        1,
    );
    assert!(report.clean_acc > 0.45, "clean too low: {report}");
    assert!(report.pgd_acc > 0.25, "adv too low: {report}");
    assert!(
        report.clean_acc + 0.05 >= report.pgd_acc,
        "attack ordering violated: {report}"
    );
    assert!(
        report.pgd_acc + 0.08 >= report.apgd_acc,
        "AA should not exceed PGD by much: {report}"
    );
}

#[test]
fn fedprophet_outperforms_partial_training_on_robustness() {
    // The paper's central comparative claim (Table 2): FedProphet attains
    // higher adversarial accuracy than partial-training baselines under
    // the same memory constraints.
    let env = env(12, 5);
    let fp = FedProphet::new(ProphetConfig::default()).run(&env);
    let pt = PartialTraining::heterofl().run(&env);
    let fp_adv = fp.final_val_adv().unwrap();
    let pt_adv = pt.final_val_adv().unwrap();
    assert!(
        fp_adv + 0.02 >= pt_adv,
        "FedProphet adv {fp_adv} should not trail HeteroFL {pt_adv}"
    );
}

#[test]
fn cascade_with_one_module_matches_joint_training_shape() {
    // Figure 9's right edge: with unconstrained memory FedProphet
    // degenerates to a single module — i.e. joint end-to-end FAT.
    let base = env(8, 13);
    let mut fleet = base.fleet.clone();
    for d in &mut fleet {
        d.avail_mem_bytes = 1 << 40;
    }
    let env1 = FlEnv::new(
        base.data.clone(),
        base.splits.clone(),
        fleet,
        base.reference_specs.clone(),
        base.cfg,
    );
    let fp = FedProphet::new(ProphetConfig::default()).run_detailed(&env1);
    assert_eq!(fp.partition.num_modules(), 1);
    // And a jFAT run on the same env learns comparably.
    let j = JFat::new().run(&env1);
    let fp_clean = fp.rounds.last().unwrap().val_clean;
    let j_clean = j.final_val_clean().unwrap();
    assert!(
        (fp_clean - j_clean).abs() < 0.35,
        "degenerate cascade {fp_clean} vs jFAT {j_clean}"
    );
}

#[test]
fn all_methods_run_on_one_environment() {
    let env = env(3, 21);
    let zoo = vec![
        vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[4, 8])),
        env.reference_specs.clone(),
    ];
    let algs: Vec<Box<dyn FlAlgorithm>> = vec![
        Box::new(JFat::new()),
        Box::new(PartialTraining::heterofl()),
        Box::new(PartialTraining::feddrop()),
        Box::new(PartialTraining::fedrolex()),
        Box::new(fedprophet_repro::fl::FedRbn::new()),
        Box::new(fedprophet_repro::fl::Distill::new(
            fedprophet_repro::fl::DistillVariant::FedDf,
            zoo.clone(),
            8,
        )),
        Box::new(fedprophet_repro::fl::Distill::new(
            fedprophet_repro::fl::DistillVariant::FedEt,
            zoo,
            8,
        )),
        Box::new(FedProphet::new(ProphetConfig::default())),
    ];
    for alg in algs {
        let out = alg.run(&env);
        assert!(out.history.len() >= 3, "{} too few rounds", alg.name());
        assert!(
            out.history.iter().all(|r| r.train_loss.is_finite()),
            "{} produced non-finite loss",
            alg.name()
        );
    }
}

// --------------------------------------------------------------------------
// Event-driven scheduler regression suite.
//
// The golden values below pin the *schedule* (who was selected, who
// completed, who straggled or dropped out, and the virtual round times):
// these derive purely from the f64 hwsim cost model and the seeded RNG
// streams, so they are machine-independent. Losses/accuracies and the
// final-model hash are kernel outputs and the kernel dispatches on
// runtime-detected CPU features (AVX2+FMA vs portable), so their absolute
// values are pinned *relative to each other* — identical across worker
// thread counts and across checkpoint/resume — rather than as literals.
// --------------------------------------------------------------------------

/// The scheduling policy under test: over-selection, dropout, and an
/// adaptive straggler deadline — every mechanism at once.
fn golden_sched() -> SchedConfig {
    SchedConfig {
        over_select: 1.5,
        dropout_p: 0.15,
        deadline: DeadlinePolicy::MedianMultiple(1.25),
        min_completions: 1,
    }
}

const GOLDEN_SEED: u64 = 2024;
const GOLDEN_ROUNDS: usize = 4;

/// Restores the hardware thread budget even if an assertion unwinds,
/// so a golden-value failure cannot pin sibling tests to one worker.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

fn run_golden(worker_threads: usize) -> SchedOutcome {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(worker_threads);
    EventScheduler::new(JFat::new(), golden_sched()).run(&env(GOLDEN_ROUNDS, GOLDEN_SEED))
}

#[test]
fn scheduler_golden_run_is_thread_count_invariant() {
    let a = run_golden(1);
    let b = run_golden(2);
    let c = run_golden(4);

    // Bit-identical ledger and final model at every worker budget.
    assert_eq!(a.ledger, b.ledger, "1 vs 2 workers");
    assert_eq!(a.ledger, c.ledger, "1 vs 4 workers");
    let h = model_hash(&a.model);
    assert_eq!(h, model_hash(&b.model), "final-model hash, 1 vs 2 workers");
    assert_eq!(h, model_hash(&c.model), "final-model hash, 1 vs 4 workers");

    // The golden schedule: (selected, completed, stragglers, dropped_out)
    // per round under seed 2024 — pure cost-model arithmetic.
    let schedule: Vec<(usize, usize, usize, usize)> = a
        .ledger
        .iter()
        .map(|r| (r.selected, r.completed, r.stragglers, r.dropped_out))
        .collect();
    assert_eq!(schedule, GOLDEN_SCHEDULE, "golden participation schedule");

    // The golden virtual timeline (deadline-clipped round durations).
    for (r, want) in a.ledger.iter().zip(GOLDEN_ROUND_TIMES) {
        assert!(
            ((r.round_time_s - want) / want).abs() < 1e-12,
            "round {} time {} vs golden {want}",
            r.round,
            r.round_time_s
        );
    }
    let clock: f64 = a.ledger.iter().map(|r| r.round_time_s).sum();
    assert!((a.ledger.last().unwrap().clock_s - clock).abs() < 1e-9);

    // Structural invariants of every ledger row.
    for r in &a.ledger {
        assert_eq!(r.selected, r.completed + r.stragglers + r.dropped_out);
        assert!(r.completed >= 1, "progress guarantee");
        assert!(r.train_loss.is_finite());
        assert!(r.participation_weight > 0.0);
    }

    // Re-running the same seed reproduces the hash; a different seed
    // diverges (the fingerprint actually discriminates).
    assert_eq!(model_hash(&run_golden(1).model), h);
    let other = EventScheduler::new(JFat::new(), golden_sched()).run(&env(GOLDEN_ROUNDS, 7));
    assert_ne!(model_hash(&other.model), h);

    // Emit the ledger as a JSON artifact for CI.
    if let Ok(path) = std::env::var("FP_SCHED_METRICS") {
        std::fs::write(path, a.ledger_json()).expect("write metrics artifact");
    }
}

/// Golden participation schedule for seed 2024: 6 clients selected per
/// round (C=4 over-selected ×1.5); round 0 cuts three stragglers at the
/// median deadline, rounds 1–3 each lose one client to dropout and two
/// to the deadline. (Re-pinned when dispatch latency gained up/down-link
/// transfer and availability moved to per-(round, client) streams.)
const GOLDEN_SCHEDULE: [(usize, usize, usize, usize); GOLDEN_ROUNDS] =
    [(6, 3, 3, 0), (6, 3, 2, 1), (6, 3, 2, 1), (6, 3, 2, 1)];

/// Golden virtual round durations (seconds) for seed 2024 — deadline- or
/// target-clipped close times of each round's event queue. Written at
/// full bit precision (18 digits) so the 1e-12 relative comparison
/// round-trips exactly.
#[allow(clippy::excessive_precision)]
const GOLDEN_ROUND_TIMES: [f64; GOLDEN_ROUNDS] = [
    4.98262259332107459e-5,
    9.14019018945031191e-5,
    4.62520476312607286e-5,
    7.06970823694219293e-5,
];

#[test]
fn checkpoint_resume_is_bit_identical() {
    let e = env(6, 77);
    let sched = EventScheduler::new(JFat::new(), golden_sched());
    let full = sched.run(&e);

    // Interrupt after round 3, round-trip the checkpoint through JSON
    // (as a real deployment would persist it), resume to completion.
    let ckpt = sched.run_until(&e, 3);
    assert_eq!(ckpt.ledger.len(), 3);
    assert_eq!(&ckpt.ledger[..], &full.ledger[..3], "prefix rounds agree");
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    let restored: SchedCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = sched.resume(&e, &restored);

    assert_eq!(resumed.ledger.len(), full.ledger.len());
    assert_eq!(
        &resumed.ledger[3..],
        &full.ledger[3..],
        "rounds k+1..n must be bit-identical after resume"
    );
    assert_eq!(resumed.ledger, full.ledger);
    assert_eq!(
        model_hash(&resumed.model),
        model_hash(&full.model),
        "final model must be bit-identical after resume"
    );
    assert!((resumed.virtual_time_s() - full.virtual_time_s()).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "different master seed")]
fn resume_rejects_mismatched_seed() {
    let e = env(3, 5);
    let sched = EventScheduler::new(JFat::new(), SchedConfig::default());
    let ckpt = sched.run_until(&e, 1);
    let other = env(3, 6);
    let _ = sched.resume(&other, &ckpt);
}

#[test]
#[should_panic(expected = "different scheduling policy")]
fn resume_rejects_mismatched_policy() {
    let e = env(3, 5);
    let ckpt = EventScheduler::new(JFat::new(), golden_sched()).run_until(&e, 1);
    let _ = EventScheduler::new(JFat::new(), SchedConfig::default()).resume(&e, &ckpt);
}

#[test]
#[should_panic(expected = "different algorithm")]
fn resume_rejects_mismatched_algorithm() {
    let e = env(3, 5);
    let ckpt = EventScheduler::new(JFat::new(), SchedConfig::default()).run_until(&e, 1);
    let _ = EventScheduler::new(fedprophet_repro::fl::FedRbn::new(), SchedConfig::default())
        .resume(&e, &ckpt);
}

#[test]
fn latency_accounting_is_consistent_between_runs() {
    let env = env(6, 33);
    let a = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    let b = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    assert_eq!(
        a.total_latency().total(),
        b.total_latency().total(),
        "latency model must be deterministic"
    );
    assert!(a.total_latency().compute_s > 0.0);
}
