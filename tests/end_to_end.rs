//! Cross-crate integration tests: the full FedProphet pipeline against its
//! baselines on a shared environment.

use fedprophet_repro::attack::{evaluate_robustness, ApgdConfig, PgdConfig};
use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fedprophet::{FedProphet, ProphetConfig};
use fedprophet_repro::fl::{FlAlgorithm, FlConfig, FlEnv, JFat, PartialTraining};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn env(rounds: usize, seed: u64) -> FlEnv {
    let cfg = FlConfig::fast(rounds, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

#[test]
fn fedprophet_full_pipeline_learns_robustly() {
    let env = env(20, 99);
    let outcome = FedProphet::new(ProphetConfig::default()).run_detailed(&env);

    // Memory claim: every module fits the minimum budget (modulo the
    // single-atom exception), and the largest module is well under the
    // full model.
    assert!(outcome.partition.num_modules() >= 2);
    assert!(
        outcome.partition.max_module_mem() < env.full_mem_req(),
        "cascade must reduce peak memory"
    );

    // Robustness: the trained model beats an untrained one under attack.
    let mut model = outcome.model;
    let report = evaluate_robustness(
        &mut model,
        &env.data.test,
        &PgdConfig::fast(env.cfg.eps0),
        &ApgdConfig::fast(env.cfg.eps0),
        32,
        1,
    );
    assert!(report.clean_acc > 0.45, "clean too low: {report}");
    assert!(report.pgd_acc > 0.25, "adv too low: {report}");
    assert!(
        report.clean_acc + 0.05 >= report.pgd_acc,
        "attack ordering violated: {report}"
    );
    assert!(
        report.pgd_acc + 0.08 >= report.apgd_acc,
        "AA should not exceed PGD by much: {report}"
    );
}

#[test]
fn fedprophet_outperforms_partial_training_on_robustness() {
    // The paper's central comparative claim (Table 2): FedProphet attains
    // higher adversarial accuracy than partial-training baselines under
    // the same memory constraints.
    let env = env(12, 5);
    let fp = FedProphet::new(ProphetConfig::default()).run(&env);
    let pt = PartialTraining::heterofl().run(&env);
    let fp_adv = fp.final_val_adv().unwrap();
    let pt_adv = pt.final_val_adv().unwrap();
    assert!(
        fp_adv + 0.02 >= pt_adv,
        "FedProphet adv {fp_adv} should not trail HeteroFL {pt_adv}"
    );
}

#[test]
fn cascade_with_one_module_matches_joint_training_shape() {
    // Figure 9's right edge: with unconstrained memory FedProphet
    // degenerates to a single module — i.e. joint end-to-end FAT.
    let base = env(8, 13);
    let mut fleet = base.fleet.clone();
    for d in &mut fleet {
        d.avail_mem_bytes = 1 << 40;
    }
    let env1 = FlEnv::new(
        base.data.clone(),
        base.splits.clone(),
        fleet,
        base.reference_specs.clone(),
        base.cfg,
    );
    let fp = FedProphet::new(ProphetConfig::default()).run_detailed(&env1);
    assert_eq!(fp.partition.num_modules(), 1);
    // And a jFAT run on the same env learns comparably.
    let j = JFat::new().run(&env1);
    let fp_clean = fp.rounds.last().unwrap().val_clean;
    let j_clean = j.final_val_clean().unwrap();
    assert!(
        (fp_clean - j_clean).abs() < 0.35,
        "degenerate cascade {fp_clean} vs jFAT {j_clean}"
    );
}

#[test]
fn all_methods_run_on_one_environment() {
    let env = env(3, 21);
    let zoo = vec![
        vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[4, 8])),
        env.reference_specs.clone(),
    ];
    let algs: Vec<Box<dyn FlAlgorithm>> = vec![
        Box::new(JFat::new()),
        Box::new(PartialTraining::heterofl()),
        Box::new(PartialTraining::feddrop()),
        Box::new(PartialTraining::fedrolex()),
        Box::new(fedprophet_repro::fl::FedRbn::new()),
        Box::new(fedprophet_repro::fl::Distill::new(
            fedprophet_repro::fl::DistillVariant::FedDf,
            zoo.clone(),
            8,
        )),
        Box::new(fedprophet_repro::fl::Distill::new(
            fedprophet_repro::fl::DistillVariant::FedEt,
            zoo,
            8,
        )),
        Box::new(FedProphet::new(ProphetConfig::default())),
    ];
    for alg in algs {
        let out = alg.run(&env);
        assert!(out.history.len() >= 3, "{} too few rounds", alg.name());
        assert!(
            out.history.iter().all(|r| r.train_loss.is_finite()),
            "{} produced non-finite loss",
            alg.name()
        );
    }
}

#[test]
fn latency_accounting_is_consistent_between_runs() {
    let env = env(6, 33);
    let a = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    let b = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    assert_eq!(
        a.total_latency().total(),
        b.total_latency().total(),
        "latency model must be deterministic"
    );
    assert!(a.total_latency().compute_s > 0.0);
}
