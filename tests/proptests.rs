//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary shapes, seeds, and configurations.

use fedprophet_repro::attack::{AttackTarget, ModelTarget, NormBall, Pgd, PgdConfig};
use fedprophet_repro::fedprophet::partition_model;
use fedprophet_repro::fl::aggregate::{weighted_average, PartialAccumulator};
use fedprophet_repro::fl::submodel::{
    channel_groups, extract_submodel, keep_sets, SubmodelAccumulator, SubmodelScheme,
};
use fedprophet_repro::fl::{
    adaptive_k, model_hash, simulate_round, staleness_weight, AsyncConfig, AsyncScheduler,
    AsyncStopPoint, DeadlinePolicy, FlConfig, FlEnv, JFat, SchedConfig,
};
use fedprophet_repro::hwsim::ClientLatency;
use fedprophet_repro::nn::models::{self, vgg_atom_specs, VggConfig};
use fedprophet_repro::nn::Mode;
use fedprophet_repro::tensor::{seeded_rng, softmax_rows, Tensor};
use proptest::prelude::*;
use rand::seq::SliceRandom;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PGD never leaves the ℓ∞ ball or the data range, for any ε, step
    /// count, and seed.
    #[test]
    fn pgd_linf_stays_in_ball(
        eps in 0.005f32..0.2,
        steps in 1usize..6,
        seed in 0u64..50,
    ) {
        let mut rng = seeded_rng(seed);
        let mut model = models::tiny_vgg(3, 8, 4, &[4, 8], &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let pgd = Pgd::new(PgdConfig {
            steps,
            alpha: None,
            ball: NormBall::Linf(eps),
            random_start: true,
            restarts: 1,
            clamp: Some((0.0, 1.0)),
        });
        let mut target = ModelTarget::new(&mut model);
        let adv = pgd.attack(&mut target, &x, &[0, 1], &mut rng);
        prop_assert!(adv.sub(&x).norm_linf() <= eps + 1e-5);
        prop_assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    /// Per-sample ℓ2 projections bound every sample independently.
    #[test]
    fn pgd_l2_per_sample_ball(
        eps in 0.05f32..2.0,
        seed in 0u64..50,
    ) {
        let mut rng = seeded_rng(seed);
        let mut model = models::tiny_vgg(3, 8, 4, &[4, 8], &mut rng);
        let x = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let pgd = Pgd::new(PgdConfig {
            steps: 3,
            alpha: None,
            ball: NormBall::L2(eps),
            random_start: true,
            restarts: 1,
            clamp: None,
        });
        let mut target = ModelTarget::new(&mut model);
        let adv = pgd.attack(&mut target, &x, &[0, 1, 2], &mut rng);
        let delta = adv.sub(&x);
        let per: usize = 3 * 8 * 8;
        for s in 0..3 {
            let n: f32 = delta.data()[s * per..(s + 1) * per]
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            prop_assert!(n <= eps + 1e-4, "sample {} norm {} > {}", s, n, eps);
        }
    }

    /// The greedy partition covers every atom exactly once, in order, for
    /// any budget.
    #[test]
    fn partition_covers_atoms(
        budget_kb in 1u64..100_000,
        w1 in 2usize..12,
        w2 in 2usize..12,
        w3 in 2usize..12,
    ) {
        let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[w1, w2, w3]));
        let p = partition_model(&specs, &[3, 8, 8], 8, 4, budget_kb * 1024);
        let mut next = 0;
        for &(f, t) in &p.windows {
            prop_assert_eq!(f, next);
            prop_assert!(t > f);
            next = t;
        }
        prop_assert_eq!(next, specs.len());
        // Memory and MACs are reported for every module.
        prop_assert_eq!(p.mem_bytes.len(), p.windows.len());
        prop_assert_eq!(p.fwd_macs.len(), p.windows.len());
    }

    /// Sub-model extraction followed by scatter-aggregation of the
    /// unmodified sub-model reproduces the global parameters exactly,
    /// for any ratio and scheme.
    #[test]
    fn submodel_roundtrip(
        ratio in 0.15f32..1.0,
        scheme_idx in 0usize..3,
        round in 0usize..20,
        seed in 0u64..30,
    ) {
        let scheme = [
            SubmodelScheme::Static,
            SubmodelScheme::Rolling,
            SubmodelScheme::Random,
        ][scheme_idx];
        let mut rng = seeded_rng(seed);
        let global = models::tiny_vgg(3, 8, 4, &[6, 10], &mut rng);
        let groups = channel_groups(&global.specs());
        let keep = keep_sets(&groups, ratio, scheme, round, &mut rng);
        let sub = extract_submodel(&global, &keep, &mut rng);
        let mut acc = SubmodelAccumulator::new(&global);
        acc.add(&sub, &keep, 1.0);
        let mut merged = global.clone();
        acc.apply(&mut merged);
        let a = global.flat_params();
        let b = merged.flat_params();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// A sliced sub-model still produces valid logits.
    #[test]
    fn submodel_forward_valid(
        ratio in 0.15f32..1.0,
        seed in 0u64..30,
    ) {
        let mut rng = seeded_rng(seed);
        let global = models::tiny_resnet(3, 8, 5, &[4, 8], &mut rng);
        let groups = channel_groups(&global.specs());
        let keep = keep_sets(&groups, ratio, SubmodelScheme::Static, 0, &mut rng);
        let mut sub = extract_submodel(&global, &keep, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = sub.forward(&x, Mode::Eval);
        prop_assert_eq!(y.shape(), &[2usize, 5]);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    /// Weighted FedAvg is client-permutation-invariant: the scheduler
    /// aggregates in ascending client-id order, and this pins that the
    /// result never depends on that ordering choice (up to f32 rounding
    /// of the f64 accumulator).
    #[test]
    fn weighted_average_is_permutation_invariant(
        a in proptest::collection::vec(-10.0f32..10.0, 5),
        b in proptest::collection::vec(-10.0f32..10.0, 5),
        c in proptest::collection::vec(-10.0f32..10.0, 5),
        w1 in 0.01f32..10.0,
        w2 in 0.01f32..10.0,
        w3 in 0.01f32..10.0,
    ) {
        let fwd = weighted_average(&[(a.clone(), w1), (b.clone(), w2), (c.clone(), w3)]);
        let rot = weighted_average(&[(c.clone(), w3), (a.clone(), w1), (b.clone(), w2)]);
        let swp = weighted_average(&[(b, w2), (a, w1), (c, w3)]);
        for i in 0..5 {
            prop_assert!((fwd[i] - rot[i]).abs() <= 1e-5, "rot[{}]: {} vs {}", i, fwd[i], rot[i]);
            prop_assert!((fwd[i] - swp[i]).abs() <= 1e-5, "swp[{}]: {} vs {}", i, fwd[i], swp[i]);
        }
    }

    /// Single-client aggregation is the exact identity, whatever the
    /// weight: renormalization makes it 1.0 and `1.0 · v` is exact.
    #[test]
    fn weighted_average_single_client_is_identity(
        v in proptest::collection::vec(-100.0f32..100.0, 8),
        w in 0.001f32..1000.0,
    ) {
        let avg = weighted_average(&[(v.clone(), w)]);
        prop_assert_eq!(avg, v);
    }

    /// Clients that all hold the same model leave it unchanged when their
    /// weights sum to 1 (and by renormalization, for any positive sum) —
    /// a fixed-point property every FedAvg round relies on.
    #[test]
    fn weighted_average_preserves_constant_model(
        v in proptest::collection::vec(-10.0f32..10.0, 6),
        w1 in 0.01f32..1.0,
        w2 in 0.01f32..1.0,
    ) {
        // Weights summing exactly to 1.
        let w3 = 1.0 - (w1 / (w1 + w2 + 1.0)) - (w2 / (w1 + w2 + 1.0));
        let u1 = w1 / (w1 + w2 + 1.0);
        let u2 = w2 / (w1 + w2 + 1.0);
        prop_assert!((u1 + u2 + w3 - 1.0).abs() < 1e-6);
        let avg = weighted_average(&[(v.clone(), u1), (v.clone(), u2), (v.clone(), w3)]);
        for (got, want) in avg.iter().zip(&v) {
            prop_assert!((got - want).abs() <= 1e-5, "{} vs {}", got, want);
        }
    }

    /// Weighted averaging is a convex combination: the result stays within
    /// the per-coordinate min/max envelope of the inputs.
    #[test]
    fn weighted_average_is_convex(
        a in proptest::collection::vec(-10.0f32..10.0, 4),
        b in proptest::collection::vec(-10.0f32..10.0, 4),
        w1 in 0.01f32..10.0,
        w2 in 0.01f32..10.0,
    ) {
        let avg = weighted_average(&[(a.clone(), w1), (b.clone(), w2)]);
        for i in 0..4 {
            let lo = a[i].min(b[i]) - 1e-4;
            let hi = a[i].max(b[i]) + 1e-4;
            prop_assert!(avg[i] >= lo && avg[i] <= hi);
        }
    }

    /// Partial averaging preserves uncovered coordinates bit-exactly.
    #[test]
    fn partial_average_preserves_uncovered(
        prev in proptest::collection::vec(-5.0f32..5.0, 6),
        idx in 0usize..6,
        v in -5.0f32..5.0,
    ) {
        let mut acc = PartialAccumulator::new(6);
        acc.add(idx, v, 1.0);
        let out = acc.finish(&prev);
        for i in 0..6 {
            if i == idx {
                prop_assert!((out[i] - v).abs() < 1e-6);
            } else {
                prop_assert_eq!(out[i], prev[i]);
            }
        }
    }

    /// Softmax rows always lie on the probability simplex.
    #[test]
    fn softmax_simplex(
        vals in proptest::collection::vec(-30.0f32..30.0, 12),
    ) {
        let t = Tensor::from_vec(vals, &[3, 4]);
        let s = softmax_rows(&t);
        for r in 0..3 {
            let row = &s.data()[r * 4..(r + 1) * 4];
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// Staleness-weighted aggregation reduces to plain FedAvg at `a = 0`,
    /// bit-for-bit: the discount is exactly 1.0 for every staleness, so
    /// `w · discount` is exactly `w`.
    #[test]
    fn staleness_aggregation_reduces_to_fedavg_at_zero_exponent(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
        c in proptest::collection::vec(-10.0f32..10.0, 6),
        w in proptest::collection::vec(0.01f32..5.0, 3),
        stale in proptest::collection::vec(0usize..100, 3),
    ) {
        let discounted: Vec<f32> = w
            .iter()
            .zip(&stale)
            .map(|(&w, &s)| w * staleness_weight(s, 0.0))
            .collect();
        let plain = weighted_average(&[
            (a.clone(), w[0]),
            (b.clone(), w[1]),
            (c.clone(), w[2]),
        ]);
        let disc = weighted_average(&[
            (a, discounted[0]),
            (b, discounted[1]),
            (c, discounted[2]),
        ]);
        prop_assert_eq!(plain, disc);
    }

    /// Staleness discounting is monotone and normalized: fresh updates
    /// keep full weight, staler updates never gain weight.
    #[test]
    fn staleness_weight_is_normalized_and_monotone(
        exp in 0.0f64..4.0,
        s in 0usize..50,
    ) {
        prop_assert_eq!(staleness_weight(0, exp), 1.0);
        let w0 = staleness_weight(s, exp);
        let w1 = staleness_weight(s + 1, exp);
        prop_assert!(w1 <= w0, "staleness {} → {} vs {}", s, w0, w1);
        prop_assert!(w1 > 0.0);
    }

    /// Buffer-flush order invariance: updates arriving at equal
    /// timestamps may enter the buffer in any order; the flush sorts by
    /// (client, version), so the aggregate is bit-identical under any
    /// arrival permutation.
    #[test]
    fn buffer_flush_is_arrival_order_invariant_for_equal_timestamps(
        vals in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 4),
            6,
        ),
        n in 2usize..6,
        exp in 0.0f64..2.0,
        shuffle_seed in 0u64..1000,
    ) {
        // Entries: client id = index, version = index % 2, equal finish
        // times. The flush contract sorts by (client, version).
        let entries: Vec<(usize, usize, Vec<f32>, f32)> = vals
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, v)| (i, i % 2, v.clone(), 0.5 + i as f32 * 0.25))
            .collect();
        let flush = |order: &[usize]| -> Vec<f32> {
            let mut buf: Vec<&(usize, usize, Vec<f32>, f32)> =
                order.iter().map(|&i| &entries[i]).collect();
            buf.sort_by_key(|e| (e.0, e.1));
            let weighted: Vec<(Vec<f32>, f32)> = buf
                .iter()
                .map(|(_, ver, v, w)| (v.clone(), w * staleness_weight(*ver, exp)))
                .collect();
            weighted_average(&weighted)
        };
        let arrival: Vec<usize> = (0..entries.len()).collect();
        let mut shuffled = arrival.clone();
        shuffled.shuffle(&mut seeded_rng(shuffle_seed));
        prop_assert_eq!(flush(&arrival), flush(&shuffled));
    }

    /// The adaptive flush threshold always lands inside its configured
    /// bounds, for any buffer size and observed staleness.
    #[test]
    fn adaptive_k_always_respects_bounds(
        buffer_k in 1usize..64,
        mean_staleness in 0.0f32..1000.0,
        k_min in 1usize..16,
        span in 0usize..16,
    ) {
        let k_max = k_min + span;
        let k = adaptive_k(buffer_k, mean_staleness, k_min, k_max);
        prop_assert!((k_min..=k_max).contains(&k), "k = {} outside [{}, {}]", k, k_min, k_max);
        // Zero staleness returns the configured threshold (clamped).
        prop_assert_eq!(adaptive_k(buffer_k, 0.0, k_min, k_max), buffer_k.clamp(k_min, k_max));
    }

    /// The `MedianMultiple(1.0)` deadline closes at the exact median of
    /// the survivor totals: with distinct integer latencies, an odd
    /// survivor count completes `(n+1)/2` clients (the median client
    /// finishes exactly at the deadline, and finish events rank before
    /// deadline events) and an even count completes `n/2` (the deadline
    /// is the midpoint between the two middle totals).
    #[test]
    fn median_multiple_deadline_splits_at_the_median(
        n in 3usize..12,
        shuffle_seed in 0u64..1000,
    ) {
        let cfg = SchedConfig {
            deadline: DeadlinePolicy::MedianMultiple(1.0),
            ..SchedConfig::default()
        };
        // Distinct totals 1..=n seconds, in arbitrary dispatch order.
        let mut totals: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        totals.shuffle(&mut seeded_rng(shuffle_seed));
        let ids: Vec<usize> = (0..n).collect();
        let latency: Vec<ClientLatency> = totals
            .iter()
            .map(|&t| ClientLatency { compute_s: t, data_access_s: 0.0, transfer_s: 0.0 })
            .collect();
        let sim = simulate_round(&ids, &latency, &vec![false; n], n, &cfg);
        let expect = if n % 2 == 1 { n.div_ceil(2) } else { n / 2 };
        prop_assert!(sim.completed.len() == expect,
            "n = {}: completed {:?}", n, sim.completed);
        prop_assert_eq!(sim.completed.len() + sim.stragglers.len(), n);
        // The round closes exactly at the median total.
        let median = if n % 2 == 1 {
            (n / 2 + 1) as f64
        } else {
            0.5 * ((n / 2) as f64 + (n / 2 + 1) as f64)
        };
        prop_assert!((sim.round_time_s - median).abs() < 1e-12,
            "close at {} expected {}", sim.round_time_s, median);
    }

    /// Attacks never mutate model parameters.
    #[test]
    fn attacks_leave_parameters_untouched(seed in 0u64..40) {
        let mut rng = seeded_rng(seed);
        let mut model = models::tiny_vgg(3, 8, 4, &[4, 8], &mut rng);
        let before = model.flat_params();
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let pgd = Pgd::new(PgdConfig::fast(0.05));
        let mut target = ModelTarget::new(&mut model);
        let _ = pgd.attack(&mut target, &x, &[0, 1], &mut rng);
        let _ = target.logits(&x);
        prop_assert_eq!(model.flat_params(), before);
    }
}

fn async_env(seed: u64) -> FlEnv {
    use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
    use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
    let cfg = FlConfig::fast(3, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

proptest! {
    // These cases train real (tiny) models — keep the count low.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Async checkpoint save → JSON round-trip → resume is bit-identical
    /// to the uninterrupted run, for arbitrary policies and stop points —
    /// including stops with buffered updates and clients in flight.
    #[test]
    fn async_checkpoint_resume_is_bit_identical(
        seed in 0u64..1000,
        concurrency in 2usize..5,
        buffer_k in 1usize..4,
        stop_aggs in 1usize..3,
        buffered in 0usize..3,
    ) {
        let buffer_k = buffer_k.min(concurrency);
        let buffered = buffered.min(buffer_k - 1);
        let env = async_env(seed);
        let sched = AsyncScheduler::new(
            JFat::new(),
            AsyncConfig { concurrency, buffer_k, staleness_exp: 0.5, ..AsyncConfig::default() },
        );
        let full = sched.run(&env);
        let ckpt = sched.run_until(&env, AsyncStopPoint { aggregations: stop_aggs, buffered });
        let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
        let restored = serde_json::from_str(&json).expect("checkpoint deserializes");
        let resumed = sched.resume(&env, &restored);
        prop_assert_eq!(&resumed.ledger, &full.ledger);
        prop_assert_eq!(model_hash(&resumed.model), model_hash(&full.model));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The single-model `ModelState` wrapper serializes
    /// **byte-identically** to the bare pre-generalization model
    /// `Checkpoint`, and round-trips parameters and BN statistics
    /// bit-exactly — so generalized-server-state checkpoints of
    /// single-model algorithms *are* the historical format (the committed
    /// v1 fixtures in `tests/checkpoint_compat.rs` pin the same property
    /// against on-disk JSON).
    #[test]
    fn model_state_wrapper_matches_bare_checkpoint_json(
        w1 in 2usize..8,
        w2 in 2usize..8,
        seed in 0u64..500,
    ) {
        use fedprophet_repro::fl::ModelState;
        use fedprophet_repro::nn::checkpoint::Checkpoint;
        let mut rng = seeded_rng(seed);
        let mut model = models::tiny_vgg(3, 8, 4, &[w1, w2], &mut rng);
        // Make the BN running statistics non-trivial.
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let _ = model.forward(&x, Mode::Train);
        let wrapper_json = serde_json::to_string(&ModelState(model.clone())).expect("serialize");
        let bare_json = serde_json::to_string(&Checkpoint::capture(&model)).expect("serialize");
        prop_assert_eq!(&wrapper_json, &bare_json);
        let back: ModelState = serde_json::from_str(&wrapper_json).expect("deserialize");
        prop_assert_eq!(back.0.flat_params(), model.flat_params());
        let (a, b) = (back.0.bn_stats(), model.bn_stats());
        prop_assert_eq!(a.len(), b.len());
        for ((m1, v1), (m2, v2)) in a.iter().zip(&b) {
            prop_assert_eq!(m1.data(), m2.data());
            prop_assert_eq!(v1.data(), v2.data());
        }
    }
}
