//! Backward compatibility of the generalized server-state checkpoints.
//!
//! The committed fixtures under `tests/fixtures/` were emitted by the
//! pre-generalization schedulers (whose checkpoints hard-coded one
//! `fp-nn` model under the `"model"` key). The generalized
//! `SchedCheckpoint<S>` / `AsyncCheckpoint<S>` with the default
//! single-model [`ModelState`] wrapper must keep loading them and must
//! re-serialize them **byte-identically** — the wrapper's serialized
//! form *is* the plain model checkpoint.

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fl::{
    AsyncCheckpoint, AsyncConfig, AsyncScheduler, DeadlinePolicy, EventScheduler, FlConfig, FlEnv,
    JFat, SchedCheckpoint, SchedConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn env(rounds: usize, seed: u64) -> FlEnv {
    let cfg = FlConfig::fast(rounds, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

#[test]
fn pre_refactor_sched_checkpoint_loads_and_reserializes_bit_identically() {
    let json = include_str!("fixtures/sched_checkpoint_v1.json");
    // Default type parameter = ModelState: the historical single-model
    // checkpoint shape.
    let ckpt: SchedCheckpoint = serde_json::from_str(json).expect("v1 checkpoint deserializes");
    assert_eq!(ckpt.next_round, 3);
    assert_eq!(ckpt.algorithm, "jFAT");
    assert_eq!(ckpt.ledger.len(), 3);
    let reserialized = serde_json::to_string(&ckpt).expect("serializes");
    assert_eq!(
        reserialized, json,
        "ModelState must serialize byte-identically to the v1 model checkpoint"
    );
}

#[test]
fn pre_refactor_sched_checkpoint_resumes() {
    let json = include_str!("fixtures/sched_checkpoint_v1.json");
    let ckpt: SchedCheckpoint = serde_json::from_str(json).expect("v1 checkpoint deserializes");
    // The fixture's originating run: seed 77, 6 rounds, the e2e
    // deadline/dropout/over-selection policy.
    let sched = EventScheduler::new(
        JFat::new(),
        SchedConfig {
            over_select: 1.5,
            dropout_p: 0.15,
            deadline: DeadlinePolicy::MedianMultiple(1.25),
            min_completions: 1,
        },
    );
    let e = env(6, 77);
    let out = sched.resume(&e, &ckpt);
    assert_eq!(out.ledger.len(), 6, "resume finishes the remaining rounds");
    assert_eq!(
        &out.ledger[..3],
        &ckpt.ledger[..],
        "the checkpointed prefix is preserved verbatim"
    );
    // The continuation rides the machine-independent schedule streams:
    // clocks advance monotonically past the checkpoint.
    assert!(out.ledger[3..].iter().all(|r| r.clock_s > ckpt.clock_s));
    assert!(out.ledger.windows(2).all(|w| w[1].clock_s >= w[0].clock_s));
}

#[test]
fn pre_refactor_async_checkpoint_loads_and_reserializes_bit_identically() {
    let json = include_str!("fixtures/async_checkpoint_v1.json");
    let ckpt: AsyncCheckpoint = serde_json::from_str(json).expect("v1 checkpoint deserializes");
    assert_eq!(ckpt.version, 2);
    assert_eq!(ckpt.algorithm, "jFAT");
    assert_eq!(ckpt.buffer.len(), 1, "fixture was taken mid-flight");
    assert!(!ckpt.in_flight.is_empty());
    assert!(
        !ckpt.past_states.is_empty(),
        "pending dispatches keep their version's model alive"
    );
    let reserialized = serde_json::to_string(&ckpt).expect("serializes");
    assert_eq!(
        reserialized, json,
        "ModelState must serialize byte-identically to the v1 model checkpoint"
    );
}

#[test]
fn pre_refactor_async_checkpoint_resumes() {
    let json = include_str!("fixtures/async_checkpoint_v1.json");
    let ckpt: AsyncCheckpoint = serde_json::from_str(json).expect("v1 checkpoint deserializes");
    let sched = AsyncScheduler::new(
        JFat::new(),
        AsyncConfig {
            concurrency: 4,
            buffer_k: 2,
            staleness_exp: 0.5,
            ..AsyncConfig::default()
        },
    );
    let e = env(5, 77);
    let out = sched.resume(&e, &ckpt);
    assert_eq!(out.ledger.len(), 5, "resume finishes the remaining aggs");
    assert_eq!(&out.ledger[..2], &ckpt.ledger[..]);
    assert!(out.ledger[2..]
        .iter()
        .all(|r| r.clock_s > ckpt.last_agg_clock_s));
}
