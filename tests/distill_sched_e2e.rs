//! Distillation-baselines-under-the-scheduler regression suite.
//!
//! FedDF/FedET were the last algorithms on the retired lockstep loop;
//! they now run through the same event-driven sync scheduler and
//! barrier-free async loop as every other algorithm, with their model
//! zoo + temperature schedule as generalized server state. Pinned here:
//!
//! 1. **Lockstep equivalence.** The wait-all default reproduces the
//!    retired lockstep distillation loop **bit-for-bit** — checked
//!    against a faithful transcription of the old loop kept in this
//!    test, so the historical Table-2 numbers stay meaningful.
//! 2. **Golden deadline schedule.** Under over-selection + dropout + a
//!    median deadline, the exact participation counts and virtual round
//!    times derive purely from the f64 hwsim cost of each client's
//!    *fitted zoo member* — machine-independent literals.
//! 3. **Async distill.** The zoo runs on the continuous virtual clock
//!    with staleness-discounted prototype averaging; a mid-flight
//!    checkpoint (buffered + in-flight dispatches) round-trips through
//!    JSON and resumes bit-identically.
//! 4. **Field-named resume validation.** A checkpoint resumed under
//!    different rules fails naming the offending checkpoint field.

use fedprophet_repro::attack::PgdConfig;
use fedprophet_repro::data::{generate, partition_pathological, BatchIter, SynthConfig};
use fedprophet_repro::fl::aggregate::weighted_average;
use fedprophet_repro::fl::{
    local_train, model_hash, AsyncConfig, AsyncScheduler, AsyncStopPoint, DeadlinePolicy, Distill,
    DistillState, DistillVariant, EventScheduler, FlAlgorithm, FlConfig, FlEnv, LocalTrainConfig,
    SchedCheckpoint, SchedConfig,
};
use fedprophet_repro::hwsim::{model_mem_req, sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{
    cnn_atom_specs, instantiate, vgg_atom_specs, CnnConfig, VggConfig,
};
use fedprophet_repro::nn::spec::AtomSpec;
use fedprophet_repro::nn::{CascadeModel, Mode, Sgd};
use fedprophet_repro::tensor::{seeded_rng, softmax_rows, Tensor};

fn env(rounds: usize, seed: u64) -> FlEnv {
    let cfg = FlConfig::fast(rounds, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed ^ 0xF1EE7);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    FlEnv::new(data, splits, fleet, specs, cfg)
}

/// A three-member zoo ascending in memory; the last entry is the
/// reference architecture of `env`.
fn zoo() -> Vec<Vec<AtomSpec>> {
    vec![
        cnn_atom_specs(&CnnConfig {
            in_channels: 3,
            input_hw: 8,
            n_classes: 4,
            widths: vec![4],
            first_stride: 1,
        }),
        vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[4, 8])),
        vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24])),
    ]
}

fn feddf(distill_iters: usize) -> Distill {
    Distill::new(DistillVariant::FedDf, zoo(), distill_iters)
}

/// Restores the hardware thread budget even if an assertion unwinds.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

// --------------------------------------------------------------------------
// 1. The retired lockstep loop, transcribed verbatim (modulo visibility)
//    from the pre-generalization `fp_fl::baselines::distill` — the
//    reference the scheduler path must reproduce bit-for-bit under the
//    default wait-all config.
// --------------------------------------------------------------------------

struct LockstepRecord {
    train_loss: f32,
    val_clean: Option<f32>,
    val_adv: Option<f32>,
}

fn fedavg_into_ref(global: &mut CascadeModel, locals: &[(CascadeModel, f32)]) {
    let updates: Vec<(Vec<f32>, f32)> = locals.iter().map(|(m, w)| (m.flat_params(), *w)).collect();
    let avg = weighted_average(&updates);
    global.set_flat_params(&avg);
    let total: f32 = locals.iter().map(|(_, w)| *w).sum();
    if total <= 0.0 {
        return;
    }
    let template = locals[0].0.bn_stats();
    if template.is_empty() {
        return;
    }
    let mut means: Vec<Tensor> = template
        .iter()
        .map(|(m, _)| Tensor::zeros(m.shape()))
        .collect();
    let mut vars: Vec<Tensor> = template
        .iter()
        .map(|(_, v)| Tensor::zeros(v.shape()))
        .collect();
    for (m, w) in locals {
        let wn = *w / total;
        for (i, (mean, var)) in m.bn_stats().iter().enumerate() {
            means[i].axpy(wn, mean);
            vars[i].axpy(wn, var);
        }
    }
    let stats: Vec<(Tensor, Tensor)> = means.into_iter().zip(vars).collect();
    global.set_bn_stats(&stats);
}

fn ensemble_probs_ref(alg: &Distill, teachers: &mut [CascadeModel], x: &Tensor) -> Tensor {
    let per_teacher: Vec<Tensor> = teachers
        .iter_mut()
        .map(|m| softmax_rows(&m.forward(x, Mode::Eval)))
        .collect();
    let (batch, classes) = (per_teacher[0].shape()[0], per_teacher[0].shape()[1]);
    let mut out = Tensor::zeros(&[batch, classes]);
    match alg.variant {
        DistillVariant::FedDf => {
            for p in &per_teacher {
                out.axpy(1.0 / per_teacher.len() as f32, p);
            }
        }
        DistillVariant::FedEt => unreachable!("reference loop is exercised with FedDF"),
    }
    out
}

fn lockstep_reference(alg: &Distill, env: &FlEnv) -> (CascadeModel, Vec<LockstepRecord>) {
    let cfg = &env.cfg;
    let n_classes = env.data.train.n_classes();
    let mut global = {
        let mut rng = seeded_rng(cfg.seed ^ 0x610BA1);
        instantiate(&env.reference_specs, &env.input_shape, n_classes, &mut rng)
    };
    let mut prototypes: Vec<CascadeModel> = alg
        .zoo
        .iter()
        .enumerate()
        .map(|(i, specs)| {
            let mut rng = seeded_rng(cfg.seed ^ 0x200 ^ i as u64);
            instantiate(specs, &env.input_shape, n_classes, &mut rng)
        })
        .collect();
    let zoo_mem: Vec<u64> = alg
        .zoo
        .iter()
        .map(|s| model_mem_req(s, &env.input_shape, cfg.batch_size).total())
        .collect();
    let mut history = Vec::with_capacity(cfg.rounds);
    let cadence = (cfg.rounds / 8).max(1);
    for t in 0..cfg.rounds {
        let ids = env.sample_round(t);
        let lr = cfg.lr.at(t);
        let (outer, inner) = fedprophet_repro::tensor::parallel::thread_split(ids.len());
        let results = fedprophet_repro::tensor::parallel::parallel_map(&ids, outer, |_, &k| {
            let arch = zoo_mem
                .iter()
                .rposition(|&m| m <= env.mem_budget(k))
                .unwrap_or(0);
            let mut model = prototypes[arch].clone();
            model.set_backend(&fedprophet_repro::tensor::backend_for_threads(inner));
            let ltc = LocalTrainConfig {
                iters: cfg.local_iters,
                batch_size: cfg.batch_size,
                lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                pgd: Some(PgdConfig {
                    steps: cfg.pgd_steps,
                    ..PgdConfig::train_linf(cfg.eps0)
                }),
                seed: cfg.seed ^ (t as u64) << 24 ^ k as u64,
            };
            let loss = local_train(&mut model, &env.data.train, &env.splits[k].indices, &ltc);
            (arch, model, env.splits[k].weight, loss)
        });
        let mean_loss = results.iter().map(|(_, _, _, l)| *l).sum::<f32>() / results.len() as f32;
        #[allow(clippy::needless_range_loop)]
        for arch in 0..alg.zoo.len() {
            let members: Vec<(CascadeModel, f32)> = results
                .iter()
                .filter(|(a, _, _, _)| *a == arch)
                .map(|(_, m, w, _)| (m.clone(), *w))
                .collect();
            if !members.is_empty() {
                fedavg_into_ref(&mut prototypes[arch], &members);
            }
        }
        // Server-side ensemble distillation into the global model.
        {
            let public = &env.data.val;
            let idx: Vec<usize> = (0..public.len()).collect();
            let mut it = BatchIter::new(public, &idx, cfg.batch_size, cfg.seed ^ 0xD157 ^ t as u64);
            let mut teachers: Vec<CascadeModel> = prototypes.clone();
            let mut opt = Sgd::new(cfg.momentum, cfg.weight_decay);
            for _ in 0..alg.distill_iters {
                let (x, _) = it.next_batch();
                let target = ensemble_probs_ref(alg, &mut teachers, &x);
                let logits = global.forward(&x, Mode::Train);
                let batch = logits.shape()[0];
                let probs = softmax_rows(&logits);
                let grad = probs.sub(&target).scale(1.0 / batch as f32);
                global.zero_grad();
                global.backward(&grad);
                opt.step(&mut global.params_mut(), lr);
            }
        }
        let (mut vc, mut va) = (None, None);
        if t % cadence == cadence - 1 || t + 1 == cfg.rounds {
            vc = Some(env.val_clean(&mut global, 64));
            va = Some(env.val_adv(&mut global, 64));
        }
        history.push(LockstepRecord {
            train_loss: mean_loss,
            val_clean: vc,
            val_adv: va,
        });
    }
    (global, history)
}

#[test]
fn wait_all_scheduler_reproduces_lockstep_distill_bit_for_bit() {
    let e = env(4, 2024);
    let alg = feddf(8);
    let (ref_model, ref_history) = lockstep_reference(&alg, &e);
    let out = alg.run(&e);

    assert_eq!(out.history.len(), ref_history.len());
    for (got, want) in out.history.iter().zip(&ref_history) {
        assert_eq!(got.train_loss, want.train_loss, "round {} loss", got.round);
        assert_eq!(got.val_clean, want.val_clean, "round {} clean", got.round);
        assert_eq!(got.val_adv, want.val_adv, "round {} adv", got.round);
    }
    assert_eq!(
        model_hash(&out.model),
        model_hash(&ref_model),
        "student must be bit-identical to the retired lockstep loop"
    );
}

// --------------------------------------------------------------------------
// 2. Golden deadline schedule: cost heterogeneity now comes from the
//    *fitted zoo member* of each client, so CNN clients finish early and
//    reference-model clients straggle.
// --------------------------------------------------------------------------

fn golden_sched() -> SchedConfig {
    SchedConfig {
        over_select: 1.5,
        dropout_p: 0.15,
        deadline: DeadlinePolicy::MedianMultiple(1.25),
        min_completions: 1,
    }
}

const GOLDEN_SEED: u64 = 2024;
const GOLDEN_ROUNDS: usize = 4;

/// Golden participation schedule for seed 2024: per round
/// `(selected, completed, stragglers, dropped_out)` — pure cost-model
/// arithmetic over each client's fitted zoo member.
const GOLDEN_SCHEDULE: [(usize, usize, usize, usize); GOLDEN_ROUNDS] =
    [(6, 4, 2, 0), (6, 3, 2, 1), (6, 3, 2, 1), (6, 3, 2, 1)];

/// Golden virtual round durations (seconds) for seed 2024, full bit
/// precision so the 1e-12 relative comparison round-trips exactly.
#[allow(clippy::excessive_precision)]
const GOLDEN_ROUND_TIMES: [f64; GOLDEN_ROUNDS] = [
    7.84269615781208842e-6,
    5.69382040980209844e-5,
    1.01447982482267806e-5,
    1.33985010003279304e-5,
];

#[test]
fn distill_golden_deadline_schedule_is_thread_count_invariant() {
    let run = |workers: usize| {
        let _guard = BudgetGuard;
        fedprophet_repro::tensor::parallel::set_thread_budget(workers);
        EventScheduler::new(feddf(8), golden_sched()).run(&env(GOLDEN_ROUNDS, GOLDEN_SEED))
    };
    let a = run(1);
    let b = run(2);
    let c = run(4);

    assert_eq!(a.ledger, b.ledger, "1 vs 2 workers");
    assert_eq!(a.ledger, c.ledger, "1 vs 4 workers");
    let h = model_hash(&a.model);
    assert_eq!(h, model_hash(&b.model), "final-model hash, 1 vs 2 workers");
    assert_eq!(h, model_hash(&c.model), "final-model hash, 1 vs 4 workers");

    let schedule: Vec<(usize, usize, usize, usize)> = a
        .ledger
        .iter()
        .map(|r| (r.selected, r.completed, r.stragglers, r.dropped_out))
        .collect();
    assert_eq!(schedule, GOLDEN_SCHEDULE, "golden participation schedule");
    for (r, want) in a.ledger.iter().zip(GOLDEN_ROUND_TIMES) {
        assert!(
            ((r.round_time_s - want) / want).abs() < 1e-12,
            "round {} time {:.17e} vs golden {want:.17e}",
            r.round,
            r.round_time_s
        );
    }
    for r in &a.ledger {
        assert_eq!(r.selected, r.completed + r.stragglers + r.dropped_out);
        assert!(r.completed >= 1, "progress guarantee");
        assert!(r.train_loss.is_finite());
    }

    // Emit the ledger as a JSON artifact for CI.
    if let Ok(path) = std::env::var("FP_DISTILL_SCHED_METRICS") {
        std::fs::write(path, a.ledger_json()).expect("write metrics artifact");
    }
}

// --------------------------------------------------------------------------
// 3. Async distill: staleness-discounted zoo averaging on the continuous
//    clock, mid-flight checkpoint/resume.
// --------------------------------------------------------------------------

fn golden_async() -> AsyncConfig {
    AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

#[test]
fn async_distill_runs_with_staleness_and_learns() {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(2);
    let e = env(8, 11);
    let out = AsyncScheduler::new(feddf(8), golden_async()).run(&e);
    assert_eq!(out.ledger.len(), 8);
    for r in &out.ledger {
        assert_eq!(r.merged, 2, "every flush merges buffer_k updates");
        assert!(r.train_loss.is_finite());
        assert!(
            r.mean_transfer_s > 0.0,
            "zoo dispatches carry transfer cost"
        );
    }
    assert!(
        out.ledger.iter().any(|r| r.max_staleness > 0),
        "4 slots over flushes of 2 must produce stale merges"
    );
    assert!(
        out.ledger
            .iter()
            .filter(|r| r.max_staleness > 0)
            .all(|r| r.weight_retained < 1.0),
        "stale zoo merges must lose FedAvg mass at a > 0"
    );
    assert!(out.final_clean_above(0.25), "async distill failed to learn");

    if let Ok(path) = std::env::var("FP_DISTILL_ASYNC_METRICS") {
        std::fs::write(path, out.ledger_json()).expect("write metrics artifact");
    }
}

trait FinalClean {
    fn final_clean_above(&self, floor: f32) -> bool;
}

impl FinalClean for fedprophet_repro::fl::AsyncOutcome<DistillState> {
    fn final_clean_above(&self, floor: f32) -> bool {
        self.ledger
            .iter()
            .rev()
            .find_map(|r| r.val_clean)
            .is_some_and(|v| v > floor)
    }
}

#[test]
fn async_distill_checkpoint_resumes_bit_identically_mid_flight() {
    let e = env(5, 77);
    let sched = AsyncScheduler::new(feddf(8), golden_async());
    let full = sched.run(&e);

    // Interrupt with one buffered update and clients still in flight, so
    // the checkpoint must carry the zoo snapshots of still-referenced
    // past versions; round-trip through JSON; resume to completion.
    let ckpt = sched.run_until(
        &e,
        AsyncStopPoint {
            aggregations: 2,
            buffered: 1,
        },
    );
    assert_eq!(ckpt.version, 2);
    assert_eq!(ckpt.buffer.len(), 1);
    assert!(!ckpt.in_flight.is_empty());
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    let restored: fedprophet_repro::fl::AsyncCheckpoint<DistillState> =
        serde_json::from_str(&json).expect("checkpoint deserializes");
    assert_eq!(restored.state.temperature, ckpt.state.temperature);
    let resumed = sched.resume(&e, &restored);

    assert_eq!(resumed.ledger, full.ledger, "ledger bit-identical");
    assert_eq!(
        model_hash(&resumed.model),
        model_hash(&full.model),
        "student bit-identical after resume"
    );
    for (a, b) in resumed.state.zoo.iter().zip(&full.state.zoo) {
        assert_eq!(
            a.flat_params(),
            b.flat_params(),
            "zoo prototypes bit-identical after resume"
        );
    }
}

#[test]
fn sync_distill_checkpoint_resumes_bit_identically() {
    let e = env(6, 77);
    let sched = EventScheduler::new(feddf(8), golden_sched());
    let full = sched.run(&e);

    let ckpt = sched.run_until(&e, 3);
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    let restored: SchedCheckpoint<DistillState> =
        serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = sched.resume(&e, &restored);

    assert_eq!(resumed.ledger, full.ledger);
    assert_eq!(model_hash(&resumed.model), model_hash(&full.model));
    for (a, b) in resumed.state.zoo.iter().zip(&full.state.zoo) {
        assert_eq!(a.flat_params(), b.flat_params());
    }
    assert_eq!(resumed.state.temperature, full.state.temperature);
}

// --------------------------------------------------------------------------
// 4. Resume validation names the offending checkpoint field.
// --------------------------------------------------------------------------

#[test]
#[should_panic(expected = "SchedCheckpoint field `rounds`")]
fn sync_resume_names_the_mismatched_rounds_field() {
    let e = env(3, 5);
    let sched = EventScheduler::new(feddf(2), SchedConfig::default());
    let ckpt = sched.run_until(&e, 1);
    let longer = env(5, 5);
    let _ = sched.resume(&longer, &ckpt);
}

#[test]
#[should_panic(expected = "SchedCheckpoint field `sched`")]
fn sync_resume_names_the_mismatched_policy_field() {
    let e = env(3, 5);
    let ckpt = EventScheduler::new(feddf(2), golden_sched()).run_until(&e, 1);
    let _ = EventScheduler::new(feddf(2), SchedConfig::default()).resume(&e, &ckpt);
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `acfg`")]
fn async_resume_names_the_mismatched_policy_field() {
    let e = env(3, 5);
    let ckpt =
        AsyncScheduler::new(feddf(2), golden_async()).run_until(&e, AsyncStopPoint::after_agg(1));
    let _ = AsyncScheduler::new(feddf(2), AsyncConfig::synchronous(8)).resume(&e, &ckpt);
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `rounds`")]
fn async_resume_names_the_mismatched_rounds_field() {
    let e = env(3, 5);
    let ckpt =
        AsyncScheduler::new(feddf(2), golden_async()).run_until(&e, AsyncStopPoint::after_agg(1));
    let longer = env(4, 5);
    let _ = AsyncScheduler::new(feddf(2), golden_async()).resume(&longer, &ckpt);
}
