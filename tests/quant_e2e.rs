//! Quantized up-link plane regression suite.
//!
//! Five guarantees are pinned here:
//!
//! 1. **Disabled equivalence.** The plane is opt-in (a trainer wrapper):
//!    dense runs write no `quant` checkpoint key, so every pre-quant
//!    golden and committed v1 fixture stays byte-identical with zero
//!    re-pinning. The b = 32 passthrough anchors the wrapper to the
//!    dense path: same final model hash, wire bytes differing only by
//!    the 8-byte header per upload.
//! 2. **Pinned quantized ledger.** The 4-bit sync run records a pinned
//!    per-round up-link byte schedule, bit-identical at 1/2/4 worker
//!    threads (the seeded stochastic draw is counter-based, so neither
//!    thread count nor SIMD width moves a byte).
//! 3. **Cheaper virtual time.** The 4-bit async run moves ≥ 4× fewer
//!    up-link bytes than dense and finishes sooner on the virtual
//!    clock; the buffer holds dequantized vectors (staleness discounts
//!    act on what the wire carried) and runs are deterministic.
//! 4. **Error-feedback lifecycle.** Residual rows stay within the LRU
//!    bound, dropouts invalidate rows with cause attribution, and the
//!    counters ride checkpoints under the `quant` key.
//! 5. **Policy-carrying checkpoints.** Checkpoints serialize the policy
//!    and residual table under the `quant` key, round-trip through JSON,
//!    resume bit-identically, and refuse to resume under a different
//!    policy with a field-named panic. Composes with the Byzantine
//!    plane: attacks corrupt the *quantized* update.

use fedprophet_repro::data::{generate, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncScheduler, AsyncStopPoint, AttackKind,
    AttackPlan, ByzTrainer, EventScheduler, FlConfig, FlEnv, QuantConfig, QuantTrainer, RobustRule,
    SchedConfig, SyntheticTrainer,
};
use fedprophet_repro::hwsim::{SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

const QUANT_SEED: u64 = 117;
const QUANT_ROUNDS: usize = 4;

fn quant_env(n_clients: usize, rounds: usize, seed: u64) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    cfg.n_clients = n_clients;
    cfg.clients_per_round = 8.min(n_clients);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16]));
    FlEnv::lazy(data, &CIFAR_POOL, SamplingMode::Balanced, specs, cfg)
}

fn async_cfg() -> AsyncConfig {
    AsyncConfig {
        concurrency: 8,
        buffer_k: 4,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

fn q4() -> QuantConfig {
    QuantConfig::new(4)
}

/// Resets the global worker budget when a test panics mid-run.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

// --------------------------------------------------- disabled equivalence

#[test]
fn dense_checkpoints_carry_no_quant_key() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let sync = serde_json::to_string(
        &EventScheduler::new(SyntheticTrainer, SchedConfig::default()).run_until(&env, 2),
    )
    .unwrap();
    assert!(!sync.contains("\"quant\""), "dense sync ckpt stays dense");
    let a = serde_json::to_string(
        &AsyncScheduler::new(SyntheticTrainer, async_cfg())
            .run_until(&env, AsyncStopPoint::after_agg(2)),
    )
    .unwrap();
    assert!(!a.contains("\"quant\""), "dense async ckpt stays dense");
}

#[test]
fn b32_passthrough_reproduces_the_dense_model() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let sched = SchedConfig::default();
    let dense = EventScheduler::new(SyntheticTrainer, sched).run(&env);
    let passthrough = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, QuantConfig::new(32)),
        sched,
    )
    .run(&env);
    // The 32-bit codes *are* the dense payload: identical training
    // trajectory, wire cost up by exactly the 8-byte header per upload.
    assert_eq!(
        model_hash(&dense.model),
        model_hash(&passthrough.model),
        "b = 32 must reproduce the dense trajectory bit-for-bit"
    );
    for (d, q) in dense.ledger.iter().zip(&passthrough.ledger) {
        assert_eq!(q.up_bytes, d.up_bytes + 8 * d.completed as u64);
    }
}

// ------------------------------------------------ pinned quantized ledger

/// Per-round `(completed, up_bytes)` of the 4-bit sync run below. Dense
/// uploads on this 1676-parameter model are 6704 B per client; 4-bit
/// chunk-256 quantization puts 874 B per client on the wire (a 7.7×
/// reduction).
const SYNC_QUANT_SCHEDULE: &[(usize, u64)] = &[(8, 6992), (8, 6992), (8, 6992), (8, 6992)];

fn quant_sync_run(workers: usize) -> (String, Vec<(usize, u64)>, String) {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(workers);
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let out = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, q4()),
        SchedConfig::default(),
    )
    .run(&env);
    let sched: Vec<(usize, u64)> = out
        .ledger
        .iter()
        .map(|r| (r.completed, r.up_bytes))
        .collect();
    (
        out.ledger_json(),
        sched,
        format!("{:016x}", model_hash(&out.model)),
    )
}

#[test]
fn quant4_sync_ledger_is_pinned_and_worker_invariant() {
    let (json, sched, hash) = quant_sync_run(1);
    assert_eq!(sched, SYNC_QUANT_SCHEDULE, "up-link schedule drifted");
    // The stochastic draw is a counter hash and the SIMD lanes are
    // bit-compatible with the scalar reference, so thread count must not
    // move a single ledger byte or model bit.
    for workers in [2, 4] {
        let (j, _, h) = quant_sync_run(workers);
        assert_eq!(json, j, "quantized ledger drifted at {workers} workers");
        assert_eq!(hash, h, "quantized model drifted at {workers} workers");
    }
}

// ---------------------------------------------------- cheaper virtual time

#[test]
fn quant4_async_cuts_up_bytes_4x_and_finishes_sooner() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let dense = AsyncScheduler::new(SyntheticTrainer, async_cfg()).run(&env);
    let sched = AsyncScheduler::new(QuantTrainer::new(SyntheticTrainer, q4()), async_cfg());
    let quant = sched.run(&env);
    let dense_up: u64 = dense.ledger.iter().map(|r| r.up_bytes).sum();
    let quant_up: u64 = quant.ledger.iter().map(|r| r.up_bytes).sum();
    assert!(
        quant_up * 4 <= dense_up,
        "4-bit must cut up-link bytes at least 4x: {quant_up} vs {dense_up}"
    );
    // Smaller uploads reach the buffer earlier: the virtual clock at the
    // final aggregation must beat the dense run's.
    let dense_clock = dense.ledger.last().unwrap().clock_s;
    let quant_clock = quant.ledger.last().unwrap().clock_s;
    assert!(
        quant_clock < dense_clock,
        "quantized run must finish sooner: {quant_clock} vs {dense_clock}"
    );
    // The buffer holds *dequantized* vectors, so clients that uploaded
    // have residuals resident (what the wire dropped, carried forward).
    assert!(
        sched.trainer.resident_rows() > 0,
        "EF rows must be resident"
    );
    // Determinism: same ledger, same model, run-to-run.
    let again =
        AsyncScheduler::new(QuantTrainer::new(SyntheticTrainer, q4()), async_cfg()).run(&env);
    assert_eq!(quant.ledger_json(), again.ledger_json());
    assert_eq!(model_hash(&quant.model), model_hash(&again.model));
}

// ------------------------------------------------ error-feedback lifecycle

#[test]
fn ef_rows_respect_the_lru_bound_and_dropouts_invalidate_with_cause() {
    let env = quant_env(8, 6, QUANT_SEED);
    let mut cfg = q4();
    cfg.ef_rows = 4;
    let sched = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, cfg),
        SchedConfig {
            dropout_p: 0.4,
            ..SchedConfig::default()
        },
    );
    let out = sched.run(&env);
    let dropped: usize = out.ledger.iter().map(|r| r.dropped_out).sum();
    assert!(dropped > 0, "a 40% dropout rate must lose someone");
    assert!(
        sched.trainer.resident_rows() <= 4,
        "resident EF rows exceed the LRU bound"
    );
    let lost = sched.trainer.losses();
    assert!(
        lost.dropout > 0,
        "dropping a client with a resident residual must count a Dropout"
    );
    assert_eq!(
        lost.timed_out + lost.outage_lost,
        0,
        "sync run has no timeouts"
    );
    // The counters ride the checkpoint under the `quant` key.
    let ckpt = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, cfg),
        SchedConfig {
            dropout_p: 0.4,
            ..SchedConfig::default()
        },
    )
    .run_until(&env, 5);
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"quant\""));
    assert!(json.contains("\"ef_rows\""));
    assert!(
        json.contains("\"dropout\""),
        "non-trivial loss counters must serialize"
    );
}

// ----------------------------------------- policy-carrying checkpoints

#[test]
fn sync_checkpoint_carries_quant_and_resumes_bit_identically() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let build = || {
        EventScheduler::new(
            QuantTrainer::new(SyntheticTrainer, q4()),
            SchedConfig::default(),
        )
    };
    let full = build().run(&env);
    let ckpt = build().run_until(&env, 2);
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(
        json.contains("\"quant\""),
        "checkpoint must carry the policy"
    );
    assert!(json.contains("\"bits\""));
    let restored: fedprophet_repro::fl::SchedCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = build().resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
fn async_checkpoint_carries_quant_and_resumes_bit_identically() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let build = || AsyncScheduler::new(QuantTrainer::new(SyntheticTrainer, q4()), async_cfg());
    let full = build().run(&env);
    let ckpt = build().run_until(&env, AsyncStopPoint::after_agg(2));
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(
        json.contains("\"quant\""),
        "checkpoint must carry the policy"
    );
    let restored: AsyncCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = build().resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
#[should_panic(expected = "SchedCheckpoint field `quant`")]
fn sync_resume_rejects_a_different_quant_policy() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let ckpt = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, q4()),
        SchedConfig::default(),
    )
    .run_until(&env, 2);
    EventScheduler::new(SyntheticTrainer, SchedConfig::default()).resume(&env, &ckpt);
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `quant`")]
fn async_resume_rejects_a_different_quant_policy() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    let ckpt = AsyncScheduler::new(QuantTrainer::new(SyntheticTrainer, q4()), async_cfg())
        .run_until(&env, AsyncStopPoint::after_agg(2));
    AsyncScheduler::new(
        QuantTrainer::new(SyntheticTrainer, QuantConfig::new(8)),
        async_cfg(),
    )
    .resume(&env, &ckpt);
}

// ------------------------------------------------- Byzantine composition

#[test]
fn byz_attack_corrupts_the_quantized_update() {
    let env = quant_env(32, QUANT_ROUNDS, QUANT_SEED);
    // ByzTrainer<QuantTrainer<..>>: quantize inside, corrupt outside —
    // the attacker flips what a hostile client would actually put on the
    // wire, and the robust rule judges exactly what the wire carried.
    let build = |rule: RobustRule| {
        EventScheduler::new(
            ByzTrainer::new(
                QuantTrainer::new(SyntheticTrainer, q4()),
                rule,
                Some(AttackPlan {
                    fraction: 0.3,
                    salt: 7,
                    kind: AttackKind::SignFlip { scale: 4.0 },
                }),
            ),
            SchedConfig::default(),
        )
    };
    let honest = EventScheduler::new(
        QuantTrainer::new(SyntheticTrainer, q4()),
        SchedConfig::default(),
    )
    .run(&env);
    let attacked = build(RobustRule::FedAvg).run(&env);
    assert_ne!(
        model_hash(&honest.model),
        model_hash(&attacked.model),
        "a 4x sign-flip through the quantized wire must move FedAvg"
    );
    let defended = build(RobustRule::MultiKrum {
        f: 2,
        m: 5,
        clip: 1.05,
    })
    .run(&env);
    let filtered: usize = defended.ledger.iter().map(|r| r.filtered.len()).sum();
    assert!(
        filtered > 0,
        "multi-Krum must filter flagged quantized updates"
    );
    // The composed stack checkpoints both planes and stays deterministic.
    let ckpt = build(RobustRule::FedAvg).run_until(&env, 2);
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"byz\"") && json.contains("\"quant\""));
    let again = build(RobustRule::FedAvg).run(&env);
    assert_eq!(attacked.ledger_json(), again.ledger_json());
}
