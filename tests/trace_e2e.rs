//! Availability-trace plane regression suite.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Disabled equivalence.** A scheduler built through `with_trace(..,
//!    None)` reproduces the flat scheduler bit-for-bit — ledger JSON,
//!    final model hash, and checkpoint JSON (no `trace` key) — at 1/2/4
//!    worker threads, so every pre-trace golden stays meaningful.
//! 2. **Pinned diurnal schedule.** Under the stock diurnal plan the
//!    participating-client sets across a simulated day are exact, and a
//!    trace-enabled sync run records a pinned per-round unavailability
//!    schedule, bit-identical at 1/2/4 worker threads.
//! 3. **Edge-outage drain.** A two-tier async run under a correlated
//!    outage plan loses whole-cohort dispatches through the reclaim path
//!    and still drives to completion.
//! 4. **Policy-carrying checkpoints.** Checkpoints serialize the plan +
//!    thermal state under the `trace` key, round-trip through JSON,
//!    resume bit-identically, and refuse to resume under a different
//!    plan with a field-named panic.

use fedprophet_repro::data::{generate, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncCheckpoint, AsyncConfig, AsyncScheduler, AsyncStopPoint, CommConfig,
    EventScheduler, FlConfig, FlEnv, OutagePlan, SchedConfig, SyntheticTrainer, TopologyConfig,
    TracePlan,
};
use fedprophet_repro::hwsim::{SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

const TRACE_SEED: u64 = 104;
const TRACE_ROUNDS: usize = 4;
const DAY_S: f64 = 86_400.0;

fn trace_env(n_clients: usize, rounds: usize, seed: u64) -> FlEnv {
    let mut cfg = FlConfig::fast(rounds, seed);
    cfg.n_clients = n_clients;
    cfg.clients_per_round = 8.min(n_clients);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16]));
    FlEnv::lazy(data, &CIFAR_POOL, SamplingMode::Balanced, specs, cfg)
}

fn async_cfg() -> AsyncConfig {
    AsyncConfig {
        concurrency: 8,
        buffer_k: 4,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    }
}

fn outage_plan() -> TracePlan {
    TracePlan {
        outage: Some(OutagePlan {
            p: 0.3,
            window_s: 50.0,
            regions: 4,
        }),
        ..TracePlan::diurnal(DAY_S)
    }
}

/// The stock diurnal mix with a hair-trigger thermal envelope: every
/// class starts throttling immediately and cools down only after a full
/// day, so back-to-back rounds heat repeat participants up — the stock
/// thresholds (~30 virtual minutes of busy time) never engage in a
/// four-round test run.
fn hot_plan() -> TracePlan {
    let mut plan = TracePlan::diurnal(DAY_S);
    for class in &mut plan.classes {
        class.throttle_after_s = 0.0;
        class.throttle_per_s = 0.05;
        class.throttle_cap = 3.0;
        class.cooldown_s = DAY_S;
    }
    plan
}

/// Resets the global worker budget when a test panics mid-run.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fedprophet_repro::tensor::parallel::set_thread_budget(0);
    }
}

// --------------------------------------------------- disabled equivalence

#[test]
fn trace_disabled_sync_is_bit_identical_to_flat() {
    let sched = SchedConfig::default();
    let flat_json;
    {
        let _guard = BudgetGuard;
        fedprophet_repro::tensor::parallel::set_thread_budget(1);
        let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
        let flat = EventScheduler::new(SyntheticTrainer, sched).run(&env);
        flat_json = flat.ledger_json();
        let traced = EventScheduler::with_trace(
            SyntheticTrainer,
            sched,
            CommConfig::default(),
            TopologyConfig::single(),
            None,
        )
        .run(&env);
        assert_eq!(flat.ledger, traced.ledger);
        assert_eq!(flat.ledger_json(), traced.ledger_json());
        assert_eq!(model_hash(&flat.model), model_hash(&traced.model));
        assert!(!flat_json.contains("\"unavailable\""));
        assert!(!flat_json.contains("\"throttled\""));
        // Checkpoints agree byte-for-byte: a disabled plane writes no
        // `trace` key.
        let a =
            serde_json::to_string(&EventScheduler::new(SyntheticTrainer, sched).run_until(&env, 2))
                .unwrap();
        let b = serde_json::to_string(
            &EventScheduler::with_trace(
                SyntheticTrainer,
                sched,
                CommConfig::default(),
                TopologyConfig::single(),
                None,
            )
            .run_until(&env, 2),
        )
        .unwrap();
        assert_eq!(a, b);
        assert!(
            !a.contains("\"trace\""),
            "disabled plane writes no trace key"
        );
    }
    // Worker-thread budget must not move a single ledger byte either way.
    for workers in [2, 4] {
        let _guard = BudgetGuard;
        fedprophet_repro::tensor::parallel::set_thread_budget(workers);
        let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
        let traced = EventScheduler::with_trace(
            SyntheticTrainer,
            sched,
            CommConfig::default(),
            TopologyConfig::single(),
            None,
        )
        .run(&env);
        assert_eq!(
            flat_json,
            traced.ledger_json(),
            "trace-disabled ledger drifted at {workers} workers"
        );
    }
}

#[test]
fn trace_disabled_async_is_bit_identical_to_flat() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let flat = AsyncScheduler::new(SyntheticTrainer, async_cfg()).run(&env);
    let traced = AsyncScheduler::with_trace(
        SyntheticTrainer,
        async_cfg(),
        CommConfig::default(),
        TopologyConfig::single(),
        None,
    )
    .run(&env);
    assert_eq!(flat.ledger, traced.ledger);
    assert_eq!(flat.ledger_json(), traced.ledger_json());
    assert_eq!(model_hash(&flat.model), model_hash(&traced.model));
    let a = serde_json::to_string(
        &AsyncScheduler::new(SyntheticTrainer, async_cfg())
            .run_until(&env, AsyncStopPoint::after_agg(2)),
    )
    .unwrap();
    let b = serde_json::to_string(
        &AsyncScheduler::with_trace(
            SyntheticTrainer,
            async_cfg(),
            CommConfig::default(),
            TopologyConfig::single(),
            None,
        )
        .run_until(&env, AsyncStopPoint::after_agg(2)),
    )
    .unwrap();
    assert_eq!(a, b);
    assert!(
        !a.contains("\"trace\""),
        "disabled plane writes no trace key"
    );
}

// ------------------------------------------------ pinned diurnal schedule

/// The participating subset of clients `0..24` under the stock diurnal
/// plan on the seed-104 fleet, sampled every four virtual hours across
/// one simulated day (draw stream version = sample index).
const DIURNAL_SETS: &[&[usize]] = &[
    &[3, 4, 5, 10, 12, 15, 21, 22, 23],
    &[3, 4, 5, 10, 11, 12, 13, 15, 19, 21, 22, 23],
    &[0, 2, 3, 8, 11, 12, 14, 15, 18, 21, 22, 23],
    &[1, 3, 4, 5, 9, 10, 12, 14, 17, 18, 19, 20, 21, 22],
    &[1, 3, 4, 5, 12, 15, 21, 22, 23],
    &[3, 4, 5, 6, 9, 10, 12, 13, 15, 17, 20, 21, 22, 23],
];

#[test]
fn diurnal_participation_sets_are_pinned_across_a_day() {
    let plan = TracePlan::diurnal(DAY_S);
    let sets: Vec<Vec<usize>> = (0..6)
        .map(|i| {
            let clock = DAY_S * i as f64 / 6.0;
            (0..24)
                .filter(|&k| plan.participates(TRACE_SEED, i, k, clock))
                .collect()
        })
        .collect();
    assert_eq!(sets.len(), DIURNAL_SETS.len());
    for (got, want) in sets.iter().zip(DIURNAL_SETS) {
        assert_eq!(got, want);
    }
}

/// Per-round `(unavailable, throttled)` schedule of the trace-enabled
/// sync run below — the diurnal curve gates a pinned client subset each
/// round and the thermal model scales a pinned number of survivors.
const SYNC_TRACE_SCHEDULE: &[(usize, usize)] = &[(6, 0), (6, 0), (6, 1), (5, 1)];

fn traced_sync_run(workers: usize) -> (String, Vec<(usize, usize)>) {
    let _guard = BudgetGuard;
    fedprophet_repro::tensor::parallel::set_thread_budget(workers);
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let out = EventScheduler::with_trace(
        SyntheticTrainer,
        SchedConfig::default(),
        CommConfig::default(),
        TopologyConfig::single(),
        Some(hot_plan()),
    )
    .run(&env);
    let sched: Vec<(usize, usize)> = out
        .ledger
        .iter()
        .map(|r| (r.unavailable, r.throttled))
        .collect();
    (out.ledger_json(), sched)
}

#[test]
fn traced_sync_run_is_pinned_and_worker_invariant() {
    let (json, sched) = traced_sync_run(1);
    assert_eq!(sched, SYNC_TRACE_SCHEDULE);
    // The gated clients reduce the merge but never break the round.
    assert!(json.contains("\"unavailable\""));
    for workers in [2, 4] {
        let (j, _) = traced_sync_run(workers);
        assert_eq!(json, j, "traced ledger drifted at {workers} workers");
    }
}

// ------------------------------------------------------ edge-outage drain

#[test]
fn edge_outage_drains_cohorts_through_the_reclaim_path() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let out = AsyncScheduler::with_trace(
        SyntheticTrainer,
        async_cfg(),
        CommConfig::default(),
        TopologyConfig::two_tier(4, 2),
        Some(outage_plan()),
    )
    .run(&env);
    assert!(!out.ledger.is_empty());
    let outage_lost: usize = out.ledger.iter().map(|r| r.outage_lost).sum();
    let unavailable: usize = out.ledger.iter().map(|r| r.unavailable).sum();
    assert!(
        outage_lost > 0,
        "a 30%-dark outage plan must kill at least one cohort dispatch"
    );
    assert!(unavailable > 0, "the diurnal curve must gate someone");
    // Determinism: the same run reproduces its ledger exactly.
    let again = AsyncScheduler::with_trace(
        SyntheticTrainer,
        async_cfg(),
        CommConfig::default(),
        TopologyConfig::two_tier(4, 2),
        Some(outage_plan()),
    )
    .run(&env);
    assert_eq!(out.ledger_json(), again.ledger_json());
    assert_eq!(model_hash(&out.model), model_hash(&again.model));
}

// ----------------------------------------- policy-carrying checkpoints

#[test]
fn sync_checkpoint_carries_trace_and_resumes_bit_identically() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let sched = SchedConfig::default();
    let build = || {
        EventScheduler::with_trace(
            SyntheticTrainer,
            sched,
            CommConfig::default(),
            TopologyConfig::single(),
            Some(TracePlan::diurnal(DAY_S)),
        )
    };
    let full = build().run(&env);
    let ckpt = build().run_until(&env, 2);
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"trace\""), "checkpoint must carry the plan");
    assert!(json.contains("\"day_s\""));
    let restored: fedprophet_repro::fl::SchedCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = build().resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
fn async_checkpoint_carries_trace_and_resumes_bit_identically() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let build = || {
        AsyncScheduler::with_trace(
            SyntheticTrainer,
            async_cfg(),
            CommConfig::default(),
            TopologyConfig::two_tier(4, 2),
            Some(outage_plan()),
        )
    };
    let full = build().run(&env);
    let ckpt = build().run_until(&env, AsyncStopPoint::after_agg(2));
    let json = serde_json::to_string(&ckpt).unwrap();
    assert!(json.contains("\"trace\""), "checkpoint must carry the plan");
    assert!(json.contains("\"window_s\""));
    let restored: AsyncCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&restored).unwrap());
    let resumed = build().resume(&env, &restored);
    assert_eq!(full.ledger, resumed.ledger);
    assert_eq!(model_hash(&full.model), model_hash(&resumed.model));
}

#[test]
#[should_panic(expected = "SchedCheckpoint field `trace`")]
fn sync_resume_rejects_a_different_trace_plan() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let sched = SchedConfig::default();
    let ckpt = EventScheduler::with_trace(
        SyntheticTrainer,
        sched,
        CommConfig::default(),
        TopologyConfig::single(),
        Some(TracePlan::diurnal(DAY_S)),
    )
    .run_until(&env, 2);
    EventScheduler::new(SyntheticTrainer, sched).resume(&env, &ckpt);
}

#[test]
#[should_panic(expected = "AsyncCheckpoint field `trace`")]
fn async_resume_rejects_a_different_trace_plan() {
    let env = trace_env(32, TRACE_ROUNDS, TRACE_SEED);
    let ckpt = AsyncScheduler::with_trace(
        SyntheticTrainer,
        async_cfg(),
        CommConfig::default(),
        TopologyConfig::single(),
        Some(TracePlan::diurnal(DAY_S)),
    )
    .run_until(&env, AsyncStopPoint::after_agg(2));
    AsyncScheduler::with_trace(
        SyntheticTrainer,
        async_cfg(),
        CommConfig::default(),
        TopologyConfig::single(),
        Some(TracePlan::diurnal(DAY_S / 2.0)),
    )
    .resume(&env, &ckpt);
}
