//! Umbrella crate for the FedProphet reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use one
//! coherent namespace. See the workspace `README.md` for the architecture
//! overview and `DESIGN.md` for the paper-to-module map.

pub use fedprophet;
pub use fp_attack as attack;
pub use fp_data as data;
pub use fp_fl as fl;
pub use fp_hwsim as hwsim;
pub use fp_nn as nn;
pub use fp_tensor as tensor;
