//! Barrier-free asynchronous aggregation in action: the same unbalanced
//! federation run under the wait-all barrier, the deadline scheduler, and
//! the FedBuff-style staleness buffer — comparing virtual wall-clock,
//! staleness, and robustness — plus FedProphet's module-window loop on
//! the async clock and a mid-flight checkpoint round trip.
//!
//! ```text
//! cargo run --release --example async_aggregation
//! ```

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fedprophet::{FedProphet, ProphetConfig};
use fedprophet_repro::fl::{
    AsyncConfig, AsyncScheduler, AsyncStopPoint, DeadlinePolicy, EventScheduler, FlConfig, FlEnv,
    JFat, SchedConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn main() {
    let seed = 17;
    let cfg = FlConfig::fast(12, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed);
    // Unbalanced sampling: weak devices dominate — the regime where a
    // barrier is most expensive.
    let fleet = sample_fleet(
        &CIFAR_POOL,
        cfg.n_clients,
        SamplingMode::Unbalanced,
        &mut rng,
    );
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    let env = FlEnv::new(data, splits, fleet, specs, cfg);

    // Three servers, same 12 aggregations of work.
    let barrier = EventScheduler::new(JFat::new(), SchedConfig::default()).run(&env);
    let deadline = EventScheduler::new(
        JFat::new(),
        SchedConfig {
            over_select: 1.5,
            dropout_p: 0.1,
            deadline: DeadlinePolicy::MedianMultiple(1.25),
            min_completions: 1,
        },
    )
    .run(&env);
    let acfg = AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        ..AsyncConfig::default()
    };
    let sched = AsyncScheduler::new(JFat::new(), acfg);
    let asy = sched.run(&env);

    let mean_staleness: f32 =
        asy.ledger.iter().map(|r| r.mean_staleness).sum::<f32>() / asy.ledger.len() as f32;
    let max_staleness = asy.ledger.iter().map(|r| r.max_staleness).max().unwrap();
    println!(
        "{:<22} {:>14} {:>10} {:>10}",
        "server", "virtual-s", "adv", "staleness"
    );
    for (name, time, adv, stale) in [
        (
            "wait-all barrier",
            barrier.virtual_time_s(),
            barrier.ledger.iter().rev().find_map(|r| r.val_adv),
            "0".to_string(),
        ),
        (
            "median deadline",
            deadline.virtual_time_s(),
            deadline.ledger.iter().rev().find_map(|r| r.val_adv),
            "0".to_string(),
        ),
        (
            "async buffer (K=2)",
            asy.virtual_time_s(),
            asy.ledger.iter().rev().find_map(|r| r.val_adv),
            format!("{mean_staleness:.2} (max {max_staleness})"),
        ),
    ] {
        println!(
            "{name:<22} {time:>14.3e} {:>9.1}% {stale:>10}",
            adv.unwrap_or(0.0) * 100.0
        );
    }
    println!(
        "\nasync vs barrier: {:.2}x less virtual wall-clock for the same aggregation count",
        barrier.virtual_time_s() / asy.virtual_time_s()
    );

    // Mid-flight checkpointing: stop with a buffered update and clients
    // still training, serialize, resume — bit-identical to running
    // through.
    let ckpt = sched.run_until(
        &env,
        AsyncStopPoint {
            aggregations: 6,
            buffered: 1,
        },
    );
    let json = serde_json::to_string(&ckpt).expect("checkpoint serializes");
    let restored = serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = sched.resume(&env, &restored);
    println!(
        "checkpoint at agg 6 (+1 buffered, {} in flight): {} bytes of JSON, resume {}",
        ckpt.in_flight.len(),
        json.len(),
        if fedprophet_repro::fl::model_hash(&resumed.model)
            == fedprophet_repro::fl::model_hash(&asy.model)
        {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // FedProphet's cascade on the async clock: module windows stream
    // into the staleness buffer; module boundaries stay barriers.
    let sync_fp = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    let async_fp = FedProphet::new(ProphetConfig {
        async_agg: Some(acfg),
        ..ProphetConfig::default()
    })
    .run_detailed(&env);
    println!(
        "\nFedProphet: wait-all {:.3e} virtual-s vs async module windows {:.3e} virtual-s \
         ({:.2}x, mean staleness {:.2})",
        sync_fp.total_round_time(),
        async_fp.total_round_time(),
        sync_fp.total_round_time() / async_fp.total_round_time(),
        async_fp
            .rounds
            .iter()
            .map(|r| r.mean_staleness)
            .sum::<f32>()
            / async_fp.rounds.len() as f32
    );
}
