//! Systematic heterogeneity in action: the same federation run with every
//! memory-efficient method, comparing robustness and simulated training
//! time — a miniature of the paper's Table 2 + Figure 7 story — and the
//! event-driven round scheduler closing rounds on straggler deadlines
//! instead of waiting for the slowest device.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use fedprophet_repro::attack::{evaluate_robustness, ApgdConfig, PgdConfig};
use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fedprophet::{FedProphet, ProphetConfig};
use fedprophet_repro::fl::{
    DeadlinePolicy, EventScheduler, FedRbn, FlAlgorithm, FlConfig, FlEnv, JFat, PartialTraining,
    SchedConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn main() {
    let seed = 17;
    let cfg = FlConfig::fast(12, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed);
    // Unbalanced sampling: weak devices dominate — the regime where the
    // paper shows the largest gaps.
    let fleet = sample_fleet(
        &CIFAR_POOL,
        cfg.n_clients,
        SamplingMode::Unbalanced,
        &mut rng,
    );
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    let env = FlEnv::new(data, splits, fleet, specs, cfg);

    println!(
        "fleet budgets: {:?} MB (full model needs {:.1} MB)\n",
        (0..env.cfg.n_clients)
            .map(|k| (env.mem_budget(k) as f64 / 1048576.0 * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        env.full_mem_req() as f64 / 1048576.0
    );

    let pgd = PgdConfig::fast(env.cfg.eps0);
    let apgd = ApgdConfig::fast(env.cfg.eps0);
    let algs: Vec<Box<dyn FlAlgorithm>> = vec![
        Box::new(JFat::new()),
        Box::new(PartialTraining::heterofl()),
        Box::new(PartialTraining::fedrolex()),
        Box::new(FedRbn::new()),
    ];
    println!("{:<14} {:>9} {:>9} {:>9}", "method", "clean", "pgd", "aa");
    for alg in algs {
        let mut out = alg.run(&env);
        let r = evaluate_robustness(&mut out.model, &env.data.test, &pgd, &apgd, 32, seed);
        println!(
            "{:<14} {:>8.2}% {:>8.2}% {:>8.2}%",
            alg.name(),
            r.clean_acc * 100.0,
            r.pgd_acc * 100.0,
            r.apgd_acc * 100.0
        );
    }

    // The event-driven scheduler: same jFAT run, but rounds close at
    // 1.25× the median predicted client duration, with 1.5× over-selection
    // and 10% dropout — the server no longer waits for the slowest TX2.
    let deadline = SchedConfig {
        over_select: 1.5,
        dropout_p: 0.1,
        deadline: DeadlinePolicy::MedianMultiple(1.25),
        min_completions: 1,
    };
    let barrier = EventScheduler::new(JFat::new(), SchedConfig::default()).run(&env);
    let sched = EventScheduler::new(JFat::new(), deadline).run(&env);
    let cut: usize = sched.ledger.iter().map(|r| r.stragglers).sum();
    let lost: usize = sched.ledger.iter().map(|r| r.dropped_out).sum();
    println!(
        "\nscheduler: wait-all barrier {:.2e} virtual-s vs deadline {:.2e} virtual-s \
         ({:.2}x faster; {cut} stragglers cut, {lost} dropouts)",
        barrier.virtual_time_s(),
        sched.virtual_time_s(),
        barrier.virtual_time_s() / sched.virtual_time_s()
    );

    // FedProphet with its detailed outcome (adds the latency view) under
    // the same deadline policy: DMA now interacts with device speed —
    // clients loaded with extra modules can straggle past the deadline.
    let fp = FedProphet::new(ProphetConfig {
        sched: deadline,
        ..ProphetConfig::default()
    });
    let detailed = fp.run_detailed(&env);
    let lat = detailed.total_latency();
    let fp_cut: usize = detailed.rounds.iter().map(|r| r.stragglers).sum();
    let mut model = detailed.model;
    let r = evaluate_robustness(&mut model, &env.data.test, &pgd, &apgd, 32, seed);
    println!(
        "{:<14} {:>8.2}% {:>8.2}% {:>8.2}%   (sim. time {:.2e}s compute + {:.2e}s swap, \
         {fp_cut} stragglers cut by DMA-aware deadline)",
        "FedProphet",
        r.clean_acc * 100.0,
        r.pgd_acc * 100.0,
        r.apgd_acc * 100.0,
        lat.compute_s,
        lat.data_access_s
    );
}
