//! Robustness evaluation workflow: train a model with and without
//! adversarial training, then measure clean / FGSM / PGD / AutoAttack-lite
//! accuracy — the paper's Table-2 measurement pipeline in miniature.
//!
//! ```text
//! cargo run --release --example robust_eval
//! ```

use fedprophet_repro::attack::{evaluate_robustness, fgsm, ApgdConfig, ModelTarget, PgdConfig};
use fedprophet_repro::data::{generate, BatchIter, SynthConfig};
use fedprophet_repro::nn::{models, CrossEntropyLoss, Mode, Sgd};
use fedprophet_repro::tensor::{argmax_rows, seeded_rng};
use fp_attack::{AttackTarget, Pgd};

fn main() {
    let seed = 7;
    let ds = generate(&SynthConfig::tiny(4, 8), seed);
    let eps = 8.0 / 255.0;

    for adversarial in [false, true] {
        let label = if adversarial { "PGD-AT" } else { "standard" };
        let mut rng = seeded_rng(seed);
        let mut model = models::tiny_vgg(3, 8, 4, &[8, 16], &mut rng);
        let mut opt = Sgd::new(0.9, 1e-4);
        let ce = CrossEntropyLoss::new();
        let idx: Vec<usize> = (0..ds.train.len()).collect();
        let mut it = BatchIter::new(&ds.train, &idx, 16, seed);
        let pgd = Pgd::new(PgdConfig::fast(eps));

        for _ in 0..120 {
            let (x, y) = it.next_batch();
            let x_train = if adversarial {
                let mut target = ModelTarget::new(&mut model);
                pgd.attack(&mut target, &x, &y, &mut rng)
            } else {
                x
            };
            let logits = model.forward(&x_train, Mode::Train);
            let (_, grad) = ce.forward(&logits, &y);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model.params_mut(), 0.05);
        }

        // Full attack-suite evaluation.
        let report = evaluate_robustness(
            &mut model,
            &ds.test,
            &PgdConfig::fast(eps),
            &ApgdConfig::fast(eps),
            32,
            seed,
        );

        // FGSM on a held-out batch, by hand.
        let idx: Vec<usize> = (0..ds.test.len().min(32)).collect();
        let (x, y) = ds.test.batch(&idx);
        let mut target = ModelTarget::new(&mut model);
        let adv = fgsm(&mut target, &x, &y, eps, Some((0.0, 1.0)));
        let preds = argmax_rows(&target.logits(&adv));
        let fgsm_acc = preds.iter().zip(&y).filter(|(p, l)| p == l).count() as f32 / y.len() as f32;

        println!("{label:>9}: {report} | fgsm {:.2}%", fgsm_acc * 100.0);
    }
    println!("\nexpected shape: AT trades some clean accuracy for much better robustness.");
}
