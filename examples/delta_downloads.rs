//! The communication plane in action: the same HeteroFL-AT federation
//! run with full payloads and with delta-encoded, cache-aware downloads
//! — identical final model, strictly fewer bytes on the wire — plus an
//! async run with per-dispatch dropout, server-side timeouts, and the
//! staleness-adaptive buffer.
//!
//! ```text
//! cargo run --release --example delta_downloads
//! ```

use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fl::{
    model_hash, AsyncConfig, AsyncScheduler, CommConfig, EventScheduler, FlConfig, FlEnv,
    PartialTraining, SchedConfig,
};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn main() {
    let seed = 2025;
    let mut cfg = FlConfig::fast(12, seed);
    // Small cohorts: most of the fleet sits out each round, so a
    // re-selected client's cached model is only a few sparse merges
    // stale — the delta-download sweet spot.
    cfg.clients_per_round = 3;
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed);
    let fleet = sample_fleet(
        &CIFAR_POOL,
        cfg.n_clients,
        SamplingMode::Unbalanced,
        &mut rng,
    );
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));
    let env = FlEnv::new(data, splits, fleet, specs, cfg);

    let alg = PartialTraining::heterofl();
    let sched = SchedConfig {
        dropout_p: 0.1,
        ..SchedConfig::default()
    };
    let comm = CommConfig {
        delta_downloads: true,
        snapshot_retention: 8,
        ..CommConfig::default()
    };

    let full = EventScheduler::new(alg, sched).run(&env);
    let delta = EventScheduler::with_comm(alg, sched, comm).run(&env);

    let sum_down =
        |l: &[fedprophet_repro::fl::SchedRound]| -> u64 { l.iter().map(|r| r.down_bytes).sum() };
    let deltas: usize = delta.ledger.iter().map(|r| r.delta_dispatches).sum();
    let dispatches: usize = delta.ledger.iter().map(|r| r.selected).sum();
    println!("HeteroFL-AT, 12 rounds, cohort 3/{}:", env.cfg.n_clients);
    println!(
        "  full payloads : {:>8} B down-link, virtual {:.3e} s",
        sum_down(&full.ledger),
        full.virtual_time_s()
    );
    println!(
        "  delta downloads: {:>8} B down-link ({deltas}/{dispatches} dispatches delta-encoded), \
         virtual {:.3e} s",
        sum_down(&delta.ledger),
        delta.virtual_time_s()
    );
    println!(
        "  model hash     : {} (delta transfer is bitwise lossless)",
        if model_hash(&full.model) == model_hash(&delta.model) {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    // The async loop with lossy clients: dropouts never report, the
    // server times them out, reclaims the slot, and distrusts their
    // cache; the flush threshold adapts to observed staleness.
    let acfg = AsyncConfig {
        concurrency: 4,
        buffer_k: 2,
        staleness_exp: 0.5,
        dropout_p: 0.2,
        timeout_s: Some(60.0),
        adaptive_buffer: Some((1, 4)),
    };
    let asy = AsyncScheduler::with_comm(alg, acfg, comm).run(&env);
    let reclaimed: usize = asy.ledger.iter().map(|r| r.timed_out).sum();
    let delta_merged: usize = asy.ledger.iter().map(|r| r.delta_merged).sum();
    let ks: Vec<usize> = asy.ledger.iter().filter_map(|r| r.flush_k).collect();
    println!(
        "\nasync (dropout 0.2, timeout, adaptive K in [1,4]): {} aggs, {} dispatches \
         reclaimed by timeout, {} merged updates were delta downloads, flush thresholds {:?}",
        asy.ledger.len(),
        reclaimed,
        delta_merged,
        ks
    );
}
