//! Memory planning for a heterogeneous edge fleet: how FedProphet's model
//! partitioner (Algorithm 1) and Differentiated Module Assignment (Eq.
//! 14–15) carve the paper's full-scale VGG16 and ResNet34 workloads.
//!
//! This example never allocates model weights — it runs entirely on
//! weight-free specs, so it plans the real 302 MB / 1.1 GB workloads
//! instantly.
//!
//! ```text
//! cargo run --release --example memory_planning
//! ```

use fedprophet_repro::fedprophet::{assign_modules, partition_model};
use fedprophet_repro::hwsim::{
    model_mem_req, sample_fleet, SamplingMode, CALTECH_POOL, CIFAR_POOL,
};
use fedprophet_repro::nn::models::{resnet34_spec_caltech, vgg16_spec_cifar};

fn main() {
    let workloads = [
        (
            "VGG16 @ CIFAR-10 (batch 64)",
            vgg16_spec_cifar(),
            vec![3usize, 32, 32],
            64usize,
            10usize,
            &CIFAR_POOL,
        ),
        (
            "ResNet34 @ Caltech-256 (batch 32)",
            resnet34_spec_caltech(),
            vec![3, 224, 224],
            32,
            256,
            &CALTECH_POOL,
        ),
    ];
    for (name, specs, input, batch, classes, pool) in workloads {
        let full = model_mem_req(&specs, &input, batch);
        println!("== {name} ==");
        println!(
            "full training memory: {:.1} MB (states {:.1} + activations {:.1})",
            full.total_mb(),
            full.states as f64 / 1048576.0,
            full.activations as f64 / 1048576.0
        );

        // Partition for the paper's 20% scenario.
        let r_min = full.total() / 5;
        let p = partition_model(&specs, &input, batch, classes, r_min);
        println!(
            "partition at R_min = {:.1} MB -> {} modules:",
            r_min as f64 / 1048576.0,
            p.num_modules()
        );
        for (i, &(f, t)) in p.windows.iter().enumerate() {
            let atoms: Vec<&str> = specs[f..t].iter().map(|a| a.name.as_str()).collect();
            println!(
                "  module {}: {:<40} {:>8.1} MB {:>8.2} GMAC",
                i + 1,
                atoms.join(","),
                p.mem_bytes[i] as f64 / 1048576.0,
                p.fwd_macs[i] as f64 / 1e9
            );
        }

        // DMA: what would a sampled fleet train this round (module 1)?
        let mut rng = fedprophet_repro::tensor::seeded_rng(7);
        let fleet = sample_fleet(pool, 10, SamplingMode::Balanced, &mut rng);
        let budgets = fedprophet_repro::fl::scale_budgets(&fleet, full.total());
        let p_min = fleet
            .iter()
            .map(|s| s.avail_tflops)
            .fold(f64::INFINITY, f64::min);
        println!("module assignment for a 10-client round (current module = 1):");
        for (k, (s, b)) in fleet.iter().zip(&budgets).enumerate() {
            let a = assign_modules(&p, 0, *b, s.avail_tflops, p_min);
            println!(
                "  client {k:>2} [{:<16}] budget {:>7.1} MB, {:>5.2} TFLOPS -> modules 1..={}",
                s.device.name,
                *b as f64 / 1048576.0,
                s.avail_tflops,
                a.last + 1
            );
        }
        println!();
    }
}
