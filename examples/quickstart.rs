//! Quickstart: run FedProphet end to end on a small synthetic federation
//! and compare it against joint federated adversarial training (jFAT).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedprophet_repro::attack::{evaluate_robustness, ApgdConfig, PgdConfig};
use fedprophet_repro::data::{generate, partition_pathological, SynthConfig};
use fedprophet_repro::fedprophet::{FedProphet, ProphetConfig};
use fedprophet_repro::fl::{FlAlgorithm, FlConfig, FlEnv, JFat};
use fedprophet_repro::hwsim::{sample_fleet, SamplingMode, CIFAR_POOL};
use fedprophet_repro::nn::models::{vgg_atom_specs, VggConfig};

fn main() {
    let seed = 42;

    // 1. Data: a CIFAR-like synthetic classification task, split across
    //    clients with the paper's 80/20 pathological non-IID protocol.
    let cfg = FlConfig::fast(12, seed);
    let data = generate(&SynthConfig::tiny(4, 8), seed);
    let splits = partition_pathological(&data.train, cfg.n_clients, 0.8, 0.25, seed);

    // 2. Devices: sample an edge fleet from the paper's Table-5 pool.
    let mut rng = fedprophet_repro::tensor::seeded_rng(seed);
    let fleet = sample_fleet(&CIFAR_POOL, cfg.n_clients, SamplingMode::Balanced, &mut rng);

    // 3. Model: a VGG-style cascade of atoms (the partitioner's input).
    let specs = vgg_atom_specs(&VggConfig::tiny(3, 8, 4, &[8, 16, 24]));

    let env = FlEnv::new(data, splits, fleet, specs, cfg);
    println!("environment: {env:?}");

    // 4. FedProphet: partition under R_min, adversarial cascade learning
    //    with APA + DMA.
    let outcome = FedProphet::new(ProphetConfig::default()).run_detailed(&env);
    println!(
        "partition: {} modules {:?} (largest {:.1} MB of {:.1} MB full)",
        outcome.partition.num_modules(),
        outcome.partition.windows,
        outcome.partition.max_module_mem() as f64 / 1048576.0,
        env.full_mem_req() as f64 / 1048576.0,
    );

    // 5. Evaluate robustness and compare to jFAT.
    let pgd = PgdConfig::fast(env.cfg.eps0);
    let apgd = ApgdConfig::fast(env.cfg.eps0);
    let mut fp_model = outcome.model;
    let fp = evaluate_robustness(&mut fp_model, &env.data.test, &pgd, &apgd, 32, seed);
    println!("FedProphet  : {fp}");

    let mut jfat = JFat::new().run(&env);
    let j = evaluate_robustness(&mut jfat.model, &env.data.test, &pgd, &apgd, 32, seed);
    println!("jFAT        : {j}");

    println!(
        "\nFedProphet trained every module within {:.0}% of the full-model memory,\n\
         while jFAT needed the whole model in memory on every client.",
        100.0 * outcome.partition.max_module_mem() as f64 / env.full_mem_req() as f64
    );
}
