//! Workspace-local stand-in for `serde_json`: renders the vendored
//! `serde::Value` model to JSON text and parses it back.
//!
//! Numbers print through Rust's shortest-roundtrip `f64` formatting, so
//! every `f32`/integer value survives a write/read cycle bit-exactly.
//! Non-finite floats serialize as `null` (JSON has no NaN/∞); reading
//! `null` as a float yields NaN.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // Shortest roundtrip formatting; integral values get a
                // plain integer rendering.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated JSON string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = vec![vec![1.0f32, -2.5], vec![f32::MIN_POSITIVE, 1.0e20]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let s: String = from_str(r#"  "a\nbA\\"  "#).unwrap();
        assert_eq!(s, "a\nbA\\");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<Vec<f32>>("[1, 2").is_err());
        assert!(from_str::<f32>("1.0 x").is_err());
    }

    #[test]
    fn integral_floats_print_as_integers() {
        let json = to_string(&vec![1.0f64, 2.5]).unwrap();
        assert_eq!(json, "[1,2.5]");
    }
}
