//! Workspace-local stand-in for `criterion`.
//!
//! Mirrors the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkId`,
//! benchmark groups, `Bencher::iter`) on top of a deliberately simple
//! wall-clock measurement loop: warm up, then take `sample_size` samples
//! whose per-iteration time is recorded; the median is reported.
//!
//! Set `FP_BENCH_JSON=<path>` to additionally write every result of the
//! bench binary as a JSON report (used to track kernel throughput across
//! PRs, e.g. `BENCH_tensor.json`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/param` or plain function name).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Sample count.
    pub samples: usize,
    /// Median throughput in GFLOP/s, when the bench declared its flop
    /// count via [`Bencher::flops`].
    pub gflops: Option<f64>,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Re-exported for bench code that imports it from criterion rather than
/// `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// The measurement configuration and result sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measurement phase of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            config: self.clone(),
            id: id.to_string(),
            flops: None,
        };
        f(&mut b);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (`group/param` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            config: self.criterion.clone(),
            id: full,
            flops: None,
        };
        f(&mut b, input);
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{id}", self.name);
        let mut b = Bencher {
            config: self.criterion.clone(),
            id: full,
            flops: None,
        };
        f(&mut b);
    }

    /// Ends the group (results are recorded eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the timing loop.
pub struct Bencher {
    config: Criterion,
    id: String,
    flops: Option<f64>,
}

impl Bencher {
    /// Declares the floating-point operations one iteration performs, so
    /// the recorded result carries a GFLOP/s throughput figure (used by
    /// the bench-regression gate to catch kernel-throughput regressions
    /// independent of wall-clock noise in non-kernel benches).
    pub fn flops(&mut self, flops_per_iter: f64) {
        self.flops = Some(flops_per_iter);
    }

    /// Measures `f`, recording and printing the result.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || iters_done == 0 {
            black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / iters_done as f64).max(1.0);

        // Choose iterations per sample so samples fill the measurement
        // budget without an excessive iteration count.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let per_sample = ((budget_ns / self.config.sample_size as f64 / est_ns).floor() as u64)
            .clamp(1, 1 << 24);

        let mut samples_ns = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = samples_ns[samples_ns.len() / 2];
        let result = BenchResult {
            id: self.id.clone(),
            median_ns: median,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("non-empty samples"),
            samples: samples_ns.len(),
            gflops: self.flops.map(|fl| fl / median),
        };
        match result.gflops {
            Some(g) => println!(
                "{:<44} time: [{} .. {} .. {}]  {g:.1} GFLOP/s",
                result.id,
                fmt_ns(result.min_ns),
                fmt_ns(result.median_ns),
                fmt_ns(result.max_ns)
            ),
            None => println!(
                "{:<44} time: [{} .. {} .. {}]",
                result.id,
                fmt_ns(result.min_ns),
                fmt_ns(result.median_ns),
                fmt_ns(result.max_ns)
            ),
        }
        RESULTS.lock().expect("results lock").push(result);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// All results recorded so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results lock").clone()
}

/// Writes the JSON report to `$FP_BENCH_JSON` if that variable is set.
/// Called automatically by [`criterion_main!`].
pub fn write_json_report() {
    let Ok(path) = std::env::var("FP_BENCH_JSON") else {
        return;
    };
    let results = take_results();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let gflops = match r.gflops {
            Some(g) => format!(", \"gflops\": {g:.2}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}{}}}{}\n",
            r.id,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            gflops,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: could not write {path}: {e}");
    } else {
        println!("criterion: wrote JSON report to {path}");
    }
}

/// Declares a group of benchmark functions sharing one configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running every group then writing
/// the optional JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_results() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        c.bench_function("flopped", |b| {
            b.flops(100.0);
            b.iter(|| std::hint::black_box(1.0f32) * 2.0)
        });
        let results = take_results();
        assert!(results.iter().any(|r| r.id == "noop"));
        assert!(results.iter().any(|r| r.id == "g/7"));
        assert!(results.iter().all(|r| r.median_ns > 0.0));
        let flopped = results.iter().find(|r| r.id == "flopped").expect("flopped");
        assert!(flopped.gflops.expect("gflops recorded") > 0.0);
        assert!(results
            .iter()
            .find(|r| r.id == "noop")
            .expect("noop")
            .gflops
            .is_none());
    }
}
