//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this repository actually uses: structs with named fields, tuple
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Generics and serde attributes are intentionally unsupported (the
//! workspace has no generic serializable types), and the macro fails loudly
//! if it meets one.
//!
//! The expansion targets the stand-in's simple data model: `Serialize`
//! produces a `serde::Value` tree, `Deserialize` reads one back.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or an enum variant body.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — field count.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skips attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Counts top-level comma-separated segments of a type list, tracking
/// `<...>` nesting (`Vec<(A, B)>` is one segment).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut segment_has_tokens = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    fields += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        fields += 1;
    }
    fields
}

/// Parses named fields (`a: T, b: U`) out of a brace-group body, skipping
/// per-field attributes and visibility.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs(body, &mut i);
        skip_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field `{name}`, found {other:?}"),
        }
        // Skip the type: everything until a top-level comma.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name);
    }
    names
}

/// Parses the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive: generic types are not supported by the vendored serde (`{name}`)"
            );
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&body))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&body))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<TokenTree>>()
                }
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                skip_attrs(&body, &mut j);
                let vname = match body.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => {
                        panic!("serde_derive: expected variant name in `{name}`, found {other:?}")
                    }
                };
                j += 1;
                let fields = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(count_tuple_fields(&inner))
                    }
                    _ => Fields::Unit,
                };
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for item kind `{other}`"),
    }
}

/// `#[derive(Serialize)]`: emits `impl serde::Serialize` producing a
/// `serde::Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                let pushes: String = names
                    .iter()
                    .map(|f| {
                        format!(
                            "m.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn serialize(&self) -> ::serde::Value {{\n\
                         let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Map(m)\n\
                       }}\n\
                     }}"
                )
            }
            Fields::Tuple(n) => {
                let items: String = (0..n)
                    .map(|k| format!("::serde::Serialize::serialize(&self.{k}),"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{items}])\n\
                       }}\n\
                     }}"
                )
            }
            Fields::Unit => format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
                 }}"
            ),
        },
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let pat = binds.join(", ");
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({pat}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Seq(vec![{items}]))]),\n"
                        )
                    }
                    Fields::Named(fs) => {
                        let pat = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((\"{f}\".to_string(), ::serde::Serialize::serialize({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                               let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                               {pushes}\n\
                               ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Map(inner))])\n\
                             }}\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`: emits `impl serde::Deserialize` reading the
/// `serde::Value` tree written by the matching `Serialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                let fields_init: String = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize(::serde::map_field(m, \"{f}\", \"{name}\")?)?,"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                         Ok({name} {{ {fields_init} }})\n\
                       }}\n\
                     }}"
                )
            }
            Fields::Tuple(n) => {
                let items: String = (0..n)
                    .map(|k| format!("::serde::Deserialize::deserialize(::serde::seq_item(s, {k}, \"{name}\")?)?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for struct {name}\"))?;\n\
                         Ok({name}({items}))\n\
                       }}\n\
                     }}"
                )
            }
            Fields::Unit => format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                   }}\n\
                 }}"
            ),
        },
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),\n"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(n) => {
                        let items: String = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::deserialize(::serde::seq_item(s, {k}, \"{name}::{v}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                               let s = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence payload for {name}::{v}\"))?;\n\
                               return Ok({name}::{v}({items}));\n\
                             }}\n"
                        ))
                    }
                    Fields::Named(fs) => {
                        let fields_init: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(::serde::map_field(fm, \"{f}\", \"{name}::{v}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                               let fm = payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map payload for {name}::{v}\"))?;\n\
                               return Ok({name}::{v} {{ {fields_init} }});\n\
                             }}\n"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                       ::serde::Value::Str(s) => {{\n\
                         match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                         Err(::serde::Error::custom(\"unknown unit variant for enum {name}\"))\n\
                       }}\n\
                       ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, payload) = &m[0];\n\
                         match tag.as_str() {{ {payload_arms} _ => {{}} }}\n\
                         Err(::serde::Error::custom(\"unknown variant tag for enum {name}\"))\n\
                       }}\n\
                       _ => Err(::serde::Error::custom(\"expected variant encoding for enum {name}\")),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
