//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the *subset* of `rand`'s API that the reproduction
//! uses: [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64` only), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64 —
//! a different stream than upstream `rand`'s ChaCha12 `StdRng`, but equally
//! deterministic: the whole repository only requires that a seed fixes the
//! stream, not any particular stream.

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their full domain (the
/// `Standard` distribution of upstream `rand`). Floats sample `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u64;
                // Rejection sampling to kill modulo bias.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        loop {
            let v = lo + (hi - lo) * f32::sample_standard(rng);
            // `lo + span*u` can round up to `hi`; reject to keep `[lo, hi)`.
            if v < hi {
                return v;
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// The user-facing random-number trait: convenience samplers over a
/// [`RngCore`]. Blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample over the full domain of `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-expanded from the seed with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all integers in range reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let c = *v.choose(&mut rng).unwrap();
            seen[c / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
