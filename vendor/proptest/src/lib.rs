//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of proptest's surface this repository uses:
//! the [`proptest!`] macro with `arg in strategy` bindings and an inner
//! `#![proptest_config(...)]` attribute, range and
//! [`collection::vec`] strategies, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! deterministic per-case seed, so a failure message's case index is
//! enough to reproduce it exactly.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// Test-runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — enough to exercise shape edges while keeping the suite
    /// fast on one core.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy producing `Vec`s of fixed length `len` with elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports of a proptest file.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Builds the deterministic RNG of one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name.
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64) << 32)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut proptest_case_rng);
                    )*
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!("property `{}` failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {} (both {lhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The harness binds arguments, honours assume, and passes sane
        /// assertions.
        #[test]
        fn harness_smoke(a in 0usize..10, b in -1.0f32..1.0, v in collection::vec(0u64..5, 4)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b), "b out of range: {}", b);
            prop_assert_eq!(v.len(), 4);
            prop_assert_ne!(a, 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let mut a = crate::case_rng("t", 5);
        let mut b = crate::case_rng("t", 5);
        assert_eq!(
            (0usize..100).generate(&mut a),
            (0usize..100).generate(&mut b)
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
