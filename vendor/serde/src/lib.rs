//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework with the same *spelling* as serde —
//! `Serialize`/`Deserialize` traits plus same-named derive macros — but a
//! radically simpler design: values serialize into a self-describing
//! [`Value`] tree, and `serde_json` renders that tree to/from JSON text.
//!
//! Supported out of the box: all primitive ints, `f32`/`f64`, `bool`,
//! `String`/`&str`, `Option<T>`, `Vec<T>`, and tuples up to arity 4. The
//! derive macros (see `serde_derive`) cover non-generic structs and enums.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model JSON maps onto).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers ride along as exact `f64` up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (declaration order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence items, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A serialization/deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a serialized map (derive-macro helper).
///
/// # Errors
///
/// Returns an error naming the missing field and its owning type.
pub fn map_field<'a>(m: &'a [(String, Value)], field: &str, ty: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{field}` for `{ty}`")))
}

/// Indexes into a serialized sequence (derive-macro helper).
///
/// # Errors
///
/// Returns an error naming the out-of-range index and its owning type.
pub fn seq_item<'a>(s: &'a [Value], idx: usize, ty: &str) -> Result<&'a Value, Error> {
    s.get(idx)
        .ok_or_else(|| Error::custom(format!("missing element {idx} for `{ty}`")))
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Produces the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match `Self`'s shape.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence for Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (*self).serialize()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected sequence for tuple"))?;
                Ok(($($t::deserialize(seq_item(s, $idx, "tuple")?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(f32::deserialize(&1.5f32.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(Vec::<f32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1usize, -2.5f64);
        assert_eq!(<(usize, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn missing_fields_error_cleanly() {
        let m = Value::Map(vec![("a".to_string(), Value::Num(1.0))]);
        let entries = m.as_map().unwrap();
        assert!(map_field(entries, "a", "T").is_ok());
        let err = map_field(entries, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
